#include "api/messages.h"

#include <algorithm>
#include <cstring>

#include "common/wire.h"

namespace sloc {
namespace api {

namespace {

constexpr uint8_t kMagic[4] = {'S', 'L', 'E', 'V'};
constexpr size_t kHeaderSize = 4 + 1 + 1;  // magic + version + type
constexpr size_t kChecksumSize = 8;

/// Pre-allocation guard: a claimed entry count is only trusted up to
/// what the remaining payload bytes could actually hold, so a tiny
/// forged frame cannot demand a huge reserve().
size_t ClampedReserve(uint32_t count, const wire::Reader& r,
                      size_t min_entry_bytes) {
  return std::min<size_t>(count, r.Remaining() / min_entry_bytes);
}

/// Starts a frame in a wire::Writer so typed encoders append their
/// payload directly after the header — no second allocation-and-copy of
/// multi-megabyte payloads, unlike routing through Seal().
wire::Writer FrameWriter(MessageType type) {
  wire::Writer w;
  w.Raw(kMagic, 4);
  w.U8(kWireVersion);
  w.U8(uint8_t(type));
  return w;
}

std::vector<uint8_t> FinishFrame(wire::Writer* w) {
  std::vector<uint8_t> frame = w->Take();
  wire::AppendChecksum(&frame);
  return frame;
}

bool KnownType(uint8_t tag) {
  return tag >= uint8_t(MessageType::kPublicKeyAnnouncement) &&
         tag <= uint8_t(MessageType::kError);
}

/// Shared frame validation: checksum, magic, version. On success returns
/// the type tag and sets [payload_begin, payload_end).
Result<MessageType> ValidateFrame(const std::vector<uint8_t>& frame,
                                  size_t* payload_begin, size_t* payload_end) {
  if (frame.size() < kHeaderSize + kChecksumSize) {
    return Status::DataLoss("envelope too short");
  }
  auto body = wire::VerifyChecksum(frame);
  if (!body.ok()) return body.status();
  if (std::memcmp(frame.data(), kMagic, 4) != 0) {
    return Status::InvalidArgument("bad envelope magic");
  }
  if (frame[4] != kWireVersion) {
    return Status::Unimplemented("unsupported wire version " +
                                 std::to_string(int(frame[4])) +
                                 " (this build speaks " +
                                 std::to_string(int(kWireVersion)) + ")");
  }
  if (!KnownType(frame[5])) {
    return Status::InvalidArgument("unknown envelope message type " +
                                   std::to_string(int(frame[5])));
  }
  *payload_begin = kHeaderSize;
  *payload_end = *body;
  return MessageType(frame[5]);
}

/// Validates the frame and returns a reader windowed over the payload
/// bytes in place — typed decoders never copy the payload out first.
Result<wire::Reader> OpenReader(MessageType expected_type,
                                const std::vector<uint8_t>& frame) {
  size_t begin = 0, end = 0;
  SLOC_ASSIGN_OR_RETURN(MessageType type, ValidateFrame(frame, &begin, &end));
  if (type != expected_type) {
    return Status::InvalidArgument(
        std::string("expected ") + MessageTypeName(expected_type) +
        " envelope, got " + MessageTypeName(type));
  }
  return wire::Reader(frame, begin, end);
}

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kPublicKeyAnnouncement: return "public_key_announcement";
    case MessageType::kLocationUpload: return "location_upload";
    case MessageType::kLocationBatch: return "location_batch";
    case MessageType::kAlertTokens: return "alert_tokens";
    case MessageType::kAlertOutcome: return "alert_outcome";
    case MessageType::kSubmitAck: return "submit_ack";
    case MessageType::kError: return "error";
  }
  return "unknown";
}

std::vector<uint8_t> Seal(MessageType type,
                          const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame(kHeaderSize + payload.size());
  std::memcpy(frame.data(), kMagic, 4);
  frame[4] = kWireVersion;
  frame[5] = uint8_t(type);
  if (!payload.empty()) {
    std::memcpy(frame.data() + kHeaderSize, payload.data(), payload.size());
  }
  wire::AppendChecksum(&frame);
  return frame;
}

Result<std::vector<uint8_t>> Open(MessageType expected_type,
                                  const std::vector<uint8_t>& frame) {
  size_t begin = 0, end = 0;
  SLOC_ASSIGN_OR_RETURN(MessageType type, ValidateFrame(frame, &begin, &end));
  if (type != expected_type) {
    return Status::InvalidArgument(
        std::string("expected ") + MessageTypeName(expected_type) +
        " envelope, got " + MessageTypeName(type));
  }
  return std::vector<uint8_t>(frame.begin() + long(begin),
                              frame.begin() + long(end));
}

Result<MessageType> PeekType(const std::vector<uint8_t>& frame) {
  size_t begin = 0, end = 0;
  return ValidateFrame(frame, &begin, &end);
}

// ---- Typed codecs ----

std::vector<uint8_t> EncodePublicKeyAnnouncement(
    const std::vector<uint8_t>& pk_blob) {
  return Seal(MessageType::kPublicKeyAnnouncement, pk_blob);
}

Result<std::vector<uint8_t>> DecodePublicKeyAnnouncement(
    const std::vector<uint8_t>& frame) {
  return Open(MessageType::kPublicKeyAnnouncement, frame);
}

std::vector<uint8_t> EncodeLocationUpload(const LocationUpload& upload) {
  wire::Writer w = FrameWriter(MessageType::kLocationUpload);
  w.I32(upload.user_id);
  w.Bytes(upload.ciphertext);
  return FinishFrame(&w);
}

Result<LocationUpload> DecodeLocationUpload(
    const std::vector<uint8_t>& frame) {
  SLOC_ASSIGN_OR_RETURN(wire::Reader r,
                        OpenReader(MessageType::kLocationUpload, frame));
  LocationUpload upload;
  SLOC_ASSIGN_OR_RETURN(upload.user_id, r.I32());
  SLOC_ASSIGN_OR_RETURN(upload.ciphertext, r.Bytes());
  SLOC_RETURN_IF_ERROR(r.ExpectDone());
  return upload;
}

Result<std::vector<uint8_t>> EncodeLocationBatch(
    const std::vector<LocationUpload>& uploads) {
  if (uploads.size() > kMaxBatchEntries) {
    return Status::InvalidArgument("location batch too large");
  }
  wire::Writer w = FrameWriter(MessageType::kLocationBatch);
  w.U32(static_cast<uint32_t>(uploads.size()));
  for (const LocationUpload& u : uploads) {
    w.I32(u.user_id);
    w.Bytes(u.ciphertext);
  }
  return FinishFrame(&w);
}

Result<std::vector<LocationUpload>> DecodeLocationBatch(
    const std::vector<uint8_t>& frame) {
  SLOC_ASSIGN_OR_RETURN(wire::Reader r,
                        OpenReader(MessageType::kLocationBatch, frame));
  SLOC_ASSIGN_OR_RETURN(uint32_t count, r.U32());
  if (count > kMaxBatchEntries) {
    return Status::InvalidArgument("location batch too large");
  }
  std::vector<LocationUpload> uploads;
  uploads.reserve(ClampedReserve(count, r, /*min_entry_bytes=*/8));
  for (uint32_t i = 0; i < count; ++i) {
    LocationUpload u;
    SLOC_ASSIGN_OR_RETURN(u.user_id, r.I32());
    SLOC_ASSIGN_OR_RETURN(u.ciphertext, r.Bytes());
    uploads.push_back(std::move(u));
  }
  SLOC_RETURN_IF_ERROR(r.ExpectDone());
  return uploads;
}

Result<std::vector<uint8_t>> EncodeTokenBundle(const TokenBundle& bundle) {
  if (bundle.tokens.size() > kMaxTokens) {
    return Status::InvalidArgument("token bundle too large");
  }
  wire::Writer w = FrameWriter(MessageType::kAlertTokens);
  w.U64(bundle.alert_id);
  w.U32(static_cast<uint32_t>(bundle.tokens.size()));
  for (const auto& token : bundle.tokens) w.Bytes(token);
  return FinishFrame(&w);
}

Result<TokenBundle> DecodeTokenBundle(const std::vector<uint8_t>& frame) {
  SLOC_ASSIGN_OR_RETURN(wire::Reader r,
                        OpenReader(MessageType::kAlertTokens, frame));
  TokenBundle bundle;
  SLOC_ASSIGN_OR_RETURN(bundle.alert_id, r.U64());
  SLOC_ASSIGN_OR_RETURN(uint32_t count, r.U32());
  if (count > kMaxTokens) {
    return Status::InvalidArgument("token bundle too large");
  }
  bundle.tokens.reserve(ClampedReserve(count, r, /*min_entry_bytes=*/4));
  for (uint32_t i = 0; i < count; ++i) {
    SLOC_ASSIGN_OR_RETURN(std::vector<uint8_t> token, r.Bytes());
    bundle.tokens.push_back(std::move(token));
  }
  SLOC_RETURN_IF_ERROR(r.ExpectDone());
  return bundle;
}

Result<std::vector<uint8_t>> EncodeOutcomeReport(const OutcomeReport& report) {
  if (report.notified_users.size() > kMaxNotified) {
    return Status::InvalidArgument("outcome report too large");
  }
  wire::Writer w = FrameWriter(MessageType::kAlertOutcome);
  w.U64(report.alert_id);
  w.U32(static_cast<uint32_t>(report.notified_users.size()));
  for (int user : report.notified_users) w.I32(user);
  w.U64(report.ciphertexts_scanned);
  w.U64(report.tokens);
  w.U64(report.non_star_bits);
  w.U64(report.pairings);
  w.U64(report.queries);
  w.U64(report.matches);
  w.U64(report.token_cache_hits);
  w.U64(report.token_cache_misses);
  w.U64(report.wall_micros);
  w.U64(report.resident_users);
  w.Str(report.store_backend);
  return FinishFrame(&w);
}

Result<OutcomeReport> DecodeOutcomeReport(const std::vector<uint8_t>& frame) {
  SLOC_ASSIGN_OR_RETURN(wire::Reader r,
                        OpenReader(MessageType::kAlertOutcome, frame));
  OutcomeReport report;
  SLOC_ASSIGN_OR_RETURN(report.alert_id, r.U64());
  SLOC_ASSIGN_OR_RETURN(uint32_t count, r.U32());
  if (count > kMaxNotified) {
    return Status::InvalidArgument("outcome report too large");
  }
  report.notified_users.reserve(
      ClampedReserve(count, r, /*min_entry_bytes=*/4));
  for (uint32_t i = 0; i < count; ++i) {
    SLOC_ASSIGN_OR_RETURN(int user, r.I32());
    report.notified_users.push_back(user);
  }
  SLOC_ASSIGN_OR_RETURN(report.ciphertexts_scanned, r.U64());
  SLOC_ASSIGN_OR_RETURN(report.tokens, r.U64());
  SLOC_ASSIGN_OR_RETURN(report.non_star_bits, r.U64());
  SLOC_ASSIGN_OR_RETURN(report.pairings, r.U64());
  SLOC_ASSIGN_OR_RETURN(report.queries, r.U64());
  SLOC_ASSIGN_OR_RETURN(report.matches, r.U64());
  SLOC_ASSIGN_OR_RETURN(report.token_cache_hits, r.U64());
  SLOC_ASSIGN_OR_RETURN(report.token_cache_misses, r.U64());
  SLOC_ASSIGN_OR_RETURN(report.wall_micros, r.U64());
  SLOC_ASSIGN_OR_RETURN(report.resident_users, r.U64());
  SLOC_ASSIGN_OR_RETURN(report.store_backend, r.Str());
  SLOC_RETURN_IF_ERROR(r.ExpectDone());
  return report;
}

std::vector<uint8_t> EncodeSubmitAck(const SubmitAck& ack) {
  wire::Writer w = FrameWriter(MessageType::kSubmitAck);
  w.U32(ack.accepted);
  w.U32(ack.rejected);
  w.I32(int(ack.error_code));
  w.Str(ack.error_message);
  return FinishFrame(&w);
}

Result<SubmitAck> DecodeSubmitAck(const std::vector<uint8_t>& frame) {
  SLOC_ASSIGN_OR_RETURN(wire::Reader r,
                        OpenReader(MessageType::kSubmitAck, frame));
  SubmitAck ack;
  SLOC_ASSIGN_OR_RETURN(ack.accepted, r.U32());
  SLOC_ASSIGN_OR_RETURN(ack.rejected, r.U32());
  SLOC_ASSIGN_OR_RETURN(int code, r.I32());
  ack.error_code = int32_t(code);
  SLOC_ASSIGN_OR_RETURN(ack.error_message, r.Str());
  SLOC_RETURN_IF_ERROR(r.ExpectDone());
  return ack;
}

std::vector<uint8_t> EncodeErrorReply(const ErrorReply& error) {
  wire::Writer w = FrameWriter(MessageType::kError);
  w.I32(int(error.code));
  w.Str(error.message);
  return FinishFrame(&w);
}

Result<ErrorReply> DecodeErrorReply(const std::vector<uint8_t>& frame) {
  SLOC_ASSIGN_OR_RETURN(wire::Reader r,
                        OpenReader(MessageType::kError, frame));
  ErrorReply error;
  SLOC_ASSIGN_OR_RETURN(int code, r.I32());
  error.code = int32_t(code);
  SLOC_ASSIGN_OR_RETURN(error.message, r.Str());
  SLOC_RETURN_IF_ERROR(r.ExpectDone());
  return error;
}

}  // namespace api
}  // namespace sloc
