// Durable ciphertext storage: append-only record log + compacted
// snapshots.
//
// LogBackedStore wraps the in-memory backends of store.h with a
// write-ahead persistence layer so a service-provider store survives
// process restart (the net/ front-end's durability story):
//
//   * every Put/Erase appends one length-prefixed, checksummed record
//     to <dir>/wal.log before returning — by the time an ingest ack is
//     sent the mutation is in the OS page cache, and on the disk itself
//     when Options::fsync_every_append is set;
//   * when the log grows past Options::compact_log_bytes, the full
//     resident state is written to <dir>/snapshot.bin (tmp + rename, so
//     a crash mid-compaction leaves the old snapshot intact) and the
//     log is truncated;
//   * Open() recovers by loading the snapshot and replaying the log
//     over it. A torn tail — an append cut short by a crash, i.e. an
//     incomplete or checksum-failing record at end-of-file with no
//     valid record anywhere after it — is truncated away and recovery
//     succeeds with every fully-durable record intact. A bad record
//     with intact data after it (trailing records, a valid record
//     boundary inside the extent a corrupted length prefix claims, or
//     an implausibly large declared length) is real corruption and
//     fails recovery with DataLoss: silently skipping it could
//     resurrect a stale location for a user.
//
// Record format (little-endian, via common/wire.h):
//   u32 payload_len | payload | u64 fnv1a64(payload)
//   payload: u8 kind (1 = put, 2 = erase) | i32 user_id | [ct blob]
//
// Snapshot format:
//   "SLSS" | u8 version | u64 count | count * (i32 user_id, bytes blob)
//   | trailing whole-file fnv1a64 checksum
//
// Threading: stronger than the base CiphertextStore contract. Put,
// Erase, Contains, VisitShard, and Compact are internally synchronized
// (per-shard mutexes for resident state, one mutex for the log file).
// A mutation applies to resident state AND appends its log record under
// one shard-lock hold, so per-user log order always matches memory
// order — two racing Puts for the same user can never ack one
// ciphertext and recover the other. Lock order is always
// shards-in-ascending-index-order -> log: Put/Erase take one shard then
// the log, the compaction sweep takes every shard then the log, and
// auto-compaction runs after the triggering append's shard lock is
// released, so the sweep cannot deadlock against appends. size() is an
// unsynchronized sum — exact once writers quiesce, approximate under
// concurrency.

#ifndef SLOC_API_LOG_STORE_H_
#define SLOC_API_LOG_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/store.h"
#include "common/result.h"
#include "pairing/group.h"

namespace sloc {
namespace api {

class LogBackedStore : public CiphertextStore {
 public:
  struct Options {
    size_t num_shards = 1;  ///< shard count of the resident delegate
    /// Compact (snapshot + truncate) once the log holds this many bytes
    /// appended since the last snapshot; 0 disables auto-compaction
    /// (Compact() stays available).
    size_t compact_log_bytes = 64u << 20;
    /// fsync() the log after every append: survives power loss, not
    /// just process death, at a large throughput cost. Off by default —
    /// process-crash durability (the page cache) is the service-level
    /// guarantee.
    bool fsync_every_append = false;
  };

  /// Opens (creating if absent) the store rooted at directory `dir`,
  /// recovering resident state from snapshot + log. The group is needed
  /// to parse recovered ciphertexts and serialize stored ones.
  static Result<std::unique_ptr<LogBackedStore>> Open(
      const std::string& dir, std::shared_ptr<const PairingGroup> group,
      const Options& options);

  ~LogBackedStore() override;

  LogBackedStore(const LogBackedStore&) = delete;
  LogBackedStore& operator=(const LogBackedStore&) = delete;

  // CiphertextStore. Put/Erase append to the log; a failed append
  // (disk full, I/O error) latches io_status() and the mutation still
  // applies in memory, so a degraded store keeps serving while ops see
  // a non-OK status.
  std::string name() const override { return "log/" + mem_->name(); }
  void Put(int user_id, hve::Ciphertext ct) override;
  bool Erase(int user_id) override;
  bool Contains(int user_id) const override { return mem_->Contains(user_id); }
  size_t size() const override { return mem_->size(); }
  size_t num_shards() const override { return mem_->num_shards(); }
  size_t ShardOf(int user_id) const override { return mem_->ShardOf(user_id); }
  /// Holds the shard's mutex for the duration of the visit — wrap in a
  /// snapshotting store (net::EpochSnapshotStore) when scans must not
  /// block ingest of the same shard.
  void VisitShard(size_t shard,
                  const std::function<void(int, const hve::Ciphertext&)>& fn)
      const override;

  /// Writes the snapshot and truncates the log. Called automatically
  /// from Put/Erase past Options::compact_log_bytes.
  Status Compact();

  /// First append/compaction failure since Open, or OK. Durability is
  /// compromised once non-OK (resident state is still correct).
  Status io_status() const;

  /// Bytes appended to the log since the last snapshot (observability).
  size_t log_bytes() const;

  const std::string& dir() const { return dir_; }

 private:
  LogBackedStore(std::string dir, std::shared_ptr<const PairingGroup> group,
                 const Options& options);

  /// Serializes and appends one record; latches io_status_ on failure.
  /// Called with the mutation's shard lock held. Returns true when the
  /// log has grown past the auto-compaction threshold (the caller
  /// compacts after releasing its shard lock).
  bool Append(uint8_t kind, int user_id, const std::vector<uint8_t>& blob);

  /// Loads snapshot + log into mem_. Truncates a torn log tail in
  /// place; rejects mid-log corruption.
  Status Recover();

  /// Threshold-triggered Compact(); collapses a stampede of concurrent
  /// triggers to one sweep and latches io_status_ on failure.
  void AutoCompact();

  std::string dir_;
  std::shared_ptr<const PairingGroup> group_;
  Options options_;
  std::unique_ptr<CiphertextStore> mem_;
  /// Guards resident state per shard (mem_ itself is not thread-safe).
  mutable std::unique_ptr<std::mutex[]> shard_mu_;

  mutable std::mutex log_mu_;
  int log_fd_ = -1;           ///< guarded by log_mu_
  size_t log_bytes_ = 0;      ///< appended since last snapshot
  Status io_status_;          ///< first I/O failure, latched
  std::atomic<bool> compacting_{false};  ///< one auto-compactor at a time
};

}  // namespace api
}  // namespace sloc

#endif  // SLOC_API_LOG_STORE_H_
