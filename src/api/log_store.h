// Durable ciphertext storage: append-only record log + compacted
// snapshots, with an mmap-indexed snapshot format sized for
// million-user stores.
//
// LogBackedStore wraps the in-memory backends of store.h with a
// write-ahead persistence layer so a service-provider store survives
// process restart (the net/ front-end's durability story):
//
//   * every Put/Erase appends one length-prefixed, checksummed record
//     to the active log segment before returning — by the time an
//     ingest ack is sent the mutation is in the OS page cache, on the
//     disk itself when Options::fsync_every_append is set, and under
//     group commit (Options::fsync_batch_max > 0) on the disk by the
//     time the covering durability notification fires (see
//     DurabilityWaiter below);
//   * when the live log grows past Options::compact_log_bytes, the
//     full resident state is written to <dir>/snapshot.bin (tmp +
//     rename, so a crash mid-compaction leaves the old snapshot
//     intact) and the superseded log segments are retired;
//   * Open() recovers by loading the snapshot and replaying the live
//     log segments over it, in manifest order. A torn tail — an
//     append cut short by a crash, i.e. an incomplete or
//     checksum-failing record at end-of-file with no valid record
//     anywhere after it — is truncated away and recovery succeeds
//     with every fully-durable record intact. A bad record with
//     intact data after it (trailing records, a valid record boundary
//     inside the extent a corrupted length prefix claims, or an
//     implausibly large declared length) is real corruption and fails
//     recovery with DataLoss: silently skipping it could resurrect a
//     stale location for a user. Only the *last* segment may carry a
//     torn tail: earlier segments were fsynced when they were rotated
//     out, so damage there is always corruption.
//
// Log segmentation and the manifest (full spec: docs/WIRE.md):
//
//   The log is a sequence of segments — <dir>/wal.log initially,
//   <dir>/wal-NNNNNN.log for rotated segments — stitched together by
//   <dir>/MANIFEST, which lists the live segments in replay order and
//   is rewritten atomically (tmp + rename). A store that has never
//   compacted has no manifest and implicitly owns [wal.log].
//
//   Compaction is *incremental*: it first rotates the log (fsync +
//   retire the active segment, open a fresh one, commit both to the
//   manifest), then serializes the resident state one shard at a time
//   holding only that shard's lock, writes the snapshot, and finally
//   shrinks the manifest to just the active segment. Ingest proceeds
//   concurrently throughout; a crash at any point leaves a manifest
//   whose snapshot + segment replay reconstructs the full state
//   (records already folded into the snapshot replay idempotently —
//   last record per user wins, and per-user order is preserved across
//   segments).
//
// Group commit:
//
//   With Options::fsync_batch_max > 0 a dedicated sync thread batches
//   appended records and fsyncs once per window — when the window
//   fills (fsync_batch_max records) or expires (fsync_interval_us),
//   whichever comes first. The DurabilityWaiter interface (store.h)
//   exposes the resulting durability horizon: CurrentTicket() after a
//   batch of Puts covers them, and NotifyDurable(ticket, fn) runs fn
//   once the covering fsync has completed. The net/ server uses this
//   to defer ingest acks until the covered records are on disk, so
//   the "acked means durable" contract of fsync_every_append survives
//   at a small fraction of the cost. fsync_every_append is ignored
//   while group commit is on (the sync thread owns syncing).
//
// Snapshot formats (full byte-level spec: docs/WIRE.md):
//
//   * v2 "SLS2" (SnapshotFormat::kMmap, the default) — a fixed 64-byte
//     header, a per-shard index of (user id, offset, length, checksum)
//     entries sorted by user id, and page-aligned per-shard blob
//     regions. Open() mmaps the file, verifies only the header and
//     index checksums, and materializes resident shards *lazily*: the
//     first scan (or Compact) of a shard faults in and parses just that
//     shard's pages. Recovery of a million-user store is an index read,
//     not a full-file parse; ingest against a freshly recovered store
//     never pays materialization at all (mutations overlay the index).
//     The mapping is released once every shard has materialized.
//     Options::background_materialize starts a thread that retires the
//     pending shards in access-frequency order without blocking ingest.
//   * v1 "SLSS" (SnapshotFormat::kLegacy) — flat count-prefixed
//     entries with a whole-file checksum; reading it means parsing
//     every blob up front. Still read transparently for migration;
//     compaction rewrites the store in the configured format, so one
//     Compact() on a default-options store migrates v1 -> v2.
//
// Record format (little-endian, via common/wire.h):
//   u32 payload_len | payload | u64 fnv1a64(payload)
//   payload: u8 kind (1 = put, 2 = erase) | i32 user_id | [ct blob]
//
// Lazy-load failure semantics: v2 header/index corruption fails Open()
// with DataLoss up front. A corrupt *blob* is only discovered when its
// shard materializes — the store then latches DataLoss in io_status()
// and drops the affected entries rather than serving unverifiable
// ciphertexts. Operators who want the v1-style all-or-nothing check at
// startup set Options::eager_snapshot_load (or call LoadAllShards()
// right after Open and check its Status).
//
// Threading: stronger than the base CiphertextStore contract. Put,
// Erase, Contains, VisitShard, and Compact are internally synchronized
// (per-shard mutexes for resident state, one mutex for the log file).
// A mutation applies to resident state AND appends its log record under
// one shard-lock hold, so per-user log order always matches memory
// order — two racing Puts for the same user can never ack one
// ciphertext and recover the other. Lock order is always
// shards-in-ascending-index-order -> {snapshot mapping, log} -> sync
// state: Put/Erase take one shard then the log, the compaction sweep
// takes one shard at a time (never two, asserted by
// compaction_max_shard_locks()), and auto-compaction runs after the
// triggering append's shard lock is released, so compaction cannot
// deadlock against appends. size() is an unsynchronized sum — exact
// once writers quiesce, approximate under concurrency.
//
// The lock discipline is machine-checked (common/thread_annotations.h):
// each nameable capability below declares what it guards via
// SLOC_GUARDED_BY, the log -> sync leg of the order is a compile-time
// SLOC_ACQUIRED_AFTER edge, and the per-shard legs (not expressible as
// attributes over a lock array) are lock-note'd at the member and
// exercised by TSan CI.

#ifndef SLOC_API_LOG_STORE_H_
#define SLOC_API_LOG_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "api/store.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "pairing/group.h"

namespace sloc {
namespace api {

class LogBackedStore : public CiphertextStore, public DurabilityWaiter {
 public:
  /// On-disk layout Compact() writes. Both are always readable.
  enum class SnapshotFormat {
    kMmap,    ///< v2 "SLS2": indexed, page-aligned, lazily recoverable
    kLegacy,  ///< v1 "SLSS": flat, whole-file parse on recovery
  };

  struct Options {
    size_t num_shards = 1;  ///< shard count of the resident delegate
    /// Compact (snapshot + retire segments) once the live log holds
    /// this many bytes appended since the last snapshot; 0 disables
    /// auto-compaction (Compact() stays available).
    size_t compact_log_bytes = 64u << 20;
    /// fsync() the log after every append: survives power loss, not
    /// just process death, at a large throughput cost. Off by default —
    /// process-crash durability (the page cache) is the service-level
    /// guarantee. Ignored while group commit (fsync_batch_max > 0) is
    /// on; the sync thread owns syncing then.
    bool fsync_every_append = false;
    /// Group commit: > 0 starts a sync thread that fsyncs once per
    /// window — when this many records are pending or when
    /// fsync_interval_us expires since the first pending record,
    /// whichever comes first. 0 disables group commit.
    size_t fsync_batch_max = 0;
    /// Maximum time a pending record waits for its covering fsync
    /// under group commit; bounds ack latency when traffic is too
    /// light to fill fsync_batch_max.
    uint64_t fsync_interval_us = 500;
    /// Format Compact() writes (recovery reads either).
    SnapshotFormat snapshot_format = SnapshotFormat::kMmap;
    /// Materialize every shard inside Open() and fail it on any
    /// corrupt blob, instead of the default lazy per-shard loading.
    /// Restores the v1 all-or-nothing startup check at v1 cost.
    bool eager_snapshot_load = false;
    /// Start a background thread after Open() that materializes the
    /// lazily-pending mmap shards in access-frequency order (most
    /// frequently touched shard first, entry count as tiebreak), so
    /// first-scan latency converges to steady state without blocking
    /// ingest or startup. No effect when there is nothing pending.
    bool background_materialize = false;
  };

  /// Opens (creating if absent) the store rooted at directory `dir`,
  /// recovering resident state from snapshot + manifest-listed log
  /// segments. The group is needed to parse recovered ciphertexts and
  /// serialize stored ones.
  static Result<std::unique_ptr<LogBackedStore>> Open(
      const std::string& dir, std::shared_ptr<const PairingGroup> group,
      const Options& options);

  ~LogBackedStore() override;

  LogBackedStore(const LogBackedStore&) = delete;
  LogBackedStore& operator=(const LogBackedStore&) = delete;

  // CiphertextStore. Put/Erase append to the log; a failed append
  // (disk full, I/O error) latches io_status() and the mutation still
  // applies in memory, so a degraded store keeps serving while ops see
  // a non-OK status. Against an unmaterialized shard, Put/Erase stay
  // O(1): the mutation lands in resident memory and overlays the
  // snapshot index entry, which is skipped if the shard later loads.
  std::string name() const override { return "log/" + mem_->name(); }
  void Put(int user_id, hve::Ciphertext ct) override;
  bool Erase(int user_id) override;
  bool Contains(int user_id) const override;
  /// Resident + lazily-pending entries (exact once writers quiesce).
  size_t size() const override {
    return mem_->size() + pending_entries_.load(std::memory_order_relaxed);
  }
  size_t num_shards() const override { return mem_->num_shards(); }
  size_t ShardOf(int user_id) const override { return mem_->ShardOf(user_id); }
  /// Holds the shard's mutex for the duration of the visit (and
  /// materializes the shard first when it is lazily pending) — wrap in
  /// a snapshotting store (net::EpochSnapshotStore) when scans must not
  /// block ingest of the same shard.
  void VisitShard(size_t shard,
                  const std::function<void(int, const hve::Ciphertext&)>& fn)
      const override;

  // DurabilityWaiter. With group commit off these degenerate to the
  // at-append durability contract: CurrentTicket() still advances per
  // append, but every notification fires synchronously.
  uint64_t CurrentTicket() const override {
    return append_seq_.load(std::memory_order_acquire);
  }
  void NotifyDurable(uint64_t ticket,
                     std::function<void(Status)> fn) override;
  void DrainNotifications() override;

  /// Blocks until everything up to `ticket` is durable (forcing a sync
  /// window to close early if needed) and returns the covering sync's
  /// outcome. Immediate under group-commit-off configurations.
  Status WaitDurable(uint64_t ticket);

  /// Highest ticket known durable on disk (observability; equals
  /// CurrentTicket() once writers quiesce and the sync thread drains).
  uint64_t durable_ticket() const {
    return durable_seq_.load(std::memory_order_acquire);
  }

  /// Rotates the log, snapshots the resident state one shard at a
  /// time (never holding more than one shard lock), and retires the
  /// superseded segments. Called automatically from Put/Erase past
  /// Options::compact_log_bytes. Materializes every pending shard
  /// along the way: the snapshot is always the full resident state.
  Status Compact();

  /// Materializes every lazily-pending shard from the mapped snapshot,
  /// releasing the mapping when done. First blob failure (DataLoss) is
  /// returned AND latched in io_status(); loading still completes so
  /// the store is fully resident either way.
  Status LoadAllShards();

  /// Snapshot entries not yet materialized into resident memory
  /// (observability; 0 once every shard has loaded or after any
  /// legacy-format recovery).
  size_t pending_snapshot_entries() const {
    return pending_entries_.load(std::memory_order_relaxed);
  }

  /// First append/compaction/lazy-load failure since Open, or OK.
  /// Durability (or, for lazy-load failures, completeness of the
  /// recovered state) is compromised once non-OK.
  Status io_status() const;

  /// Live log bytes not yet folded into a snapshot, across segments
  /// (observability; the auto-compaction trigger).
  size_t log_bytes() const;

  /// High-water mark of shard locks held simultaneously by compaction
  /// sweeps since Open (observability; the incremental-compaction
  /// invariant is that this never exceeds 1).
  size_t compaction_max_shard_locks() const {
    return compact_locks_max_.load(std::memory_order_relaxed);
  }

  const std::string& dir() const { return dir_; }

  /// Test hook: called at named checkpoints inside Compact()
  /// ("rotated", "serialized", "snapshot-written"); a non-OK return
  /// aborts the compaction there, simulating a crash between on-disk
  /// steps. Not for production use; call before any concurrent use.
  void TestSetCompactionFault(std::function<Status(const char*)> fault) {
    compact_fault_ = std::move(fault);
  }

 private:
  struct MappedSnapshot;

  LogBackedStore(std::string dir, std::shared_ptr<const PairingGroup> group,
                 const Options& options);

  /// Serializes and appends one record; latches io_status_ on failure.
  /// Called with the mutation's shard lock held (the shard -> log leg
  /// of the lock order; it takes log_mu_, then sync_mu_, itself).
  /// Returns true when the live log has grown past the auto-compaction
  /// threshold (the caller compacts after releasing its shard lock).
  bool Append(uint8_t kind, int user_id, const std::vector<uint8_t>& blob)
      SLOC_EXCLUDES(log_mu_, sync_mu_);

  /// Loads snapshot + manifest-listed segments into mem_ (v2
  /// snapshots: index only, blobs stay mapped and pending). Truncates
  /// a torn tail of the last segment in place; rejects mid-log
  /// corruption anywhere else. Open() holds log_mu_ across it: the
  /// segment list and byte counters it rebuilds are log state.
  Status Recover() SLOC_REQUIRES(log_mu_);

  /// Replays one log segment over mem_. `last` permits (and truncates)
  /// a torn tail; non-last segments must parse to their exact end.
  /// On success adds the segment's valid byte count to log_bytes_.
  Status ReplaySegment(const std::string& path, bool last)
      SLOC_REQUIRES(log_mu_);

  /// Parses + validates a v2 snapshot: maps the file, checks header and
  /// index checksums/bounds, and fills snap_. Blobs are not touched.
  Status RecoverMmapSnapshot(int fd, size_t file_bytes);

  /// Reads + parses a whole v1 snapshot into mem_ (the legacy path).
  Status RecoverLegacySnapshot(const std::vector<uint8_t>& snap);

  /// Materializes one shard from the mapped snapshot into mem_.
  /// Requires shard_mu_[shard]; no-op when already loaded. Corrupt
  /// blobs latch DataLoss and are dropped (see file comment).
  Status EnsureShardLoadedLocked(size_t shard) const;

  /// True when the (unmaterialized) snapshot index holds `user_id` in
  /// `shard`. Requires shard_mu_[shard].
  bool SnapshotIndexHasLocked(size_t shard, int user_id) const;

  /// Threshold-triggered Compact(); collapses a stampede of concurrent
  /// triggers to one sweep and latches io_status_ on failure.
  void AutoCompact();

  /// Retires the active segment (fsync + close), opens a fresh one,
  /// and commits [.., old, new] to the manifest. Everything appended
  /// before the rotation is durable once this returns.
  Status RotateLog();

  /// Atomically rewrites <dir>/MANIFEST to list `segments`.
  Status WriteManifest(const std::vector<std::string>& segments);

  /// Path of segment `name` under dir_.
  std::string SegmentPath(const std::string& name) const;

  /// The sync thread body (group commit): batch, fsync, notify.
  void SyncLoop() SLOC_EXCLUDES(sync_mu_, log_mu_);

  /// True while appends exist that no successful sync has covered yet
  /// (and no sync failure has latched). The sync thread's wakeup
  /// predicate, written as a member so the analysis can check the
  /// sync_status_ read (a lambda body would be analyzed lock-free).
  bool SyncPendingLocked() const SLOC_REQUIRES(sync_mu_);

  /// fsyncs the log fd and reports the ticket the sync covers. Takes
  /// log_mu_; the caller must have dropped sync_mu_ first (lock order).
  Status SyncNow(uint64_t* covered) SLOC_EXCLUDES(log_mu_, sync_mu_);

  /// Marks everything up to `covered` durable with outcome `st` and
  /// fires the eligible notifications (all of them, with the latched
  /// error, once any sync has failed). Callbacks run without locks.
  void CompleteSync(uint64_t covered, Status st)
      SLOC_EXCLUDES(sync_mu_);

  /// The background materializer body: retire pending shards
  /// most-accessed-first, one shard lock at a time.
  void MaterializeLoop();

  std::string dir_;
  std::shared_ptr<const PairingGroup> group_;
  Options options_;
  std::unique_ptr<CiphertextStore> mem_;  // partitioned by shard_mu_[i]
  // lock-note: shard_mu_[i] guards shard i's slice of mem_ and
  // recovery_[i]. A per-element guard over an array of capabilities is
  // not expressible in the attribute grammar, so the discipline is by
  // convention: every access goes through MutexLock lock(shard_mu_[s])
  // with s = ShardOf(user), and multiple shard locks are only ever held
  // in ascending index order (today nothing holds two:
  // compaction_max_shard_locks() pins the sweep to one).
  mutable std::unique_ptr<Mutex[]> shard_mu_;

  /// Lazy-recovery state per shard, guarded by the matching shard_mu_
  /// (see the lock-note above — per-element guards are by convention).
  struct ShardRecovery {
    /// True once the shard's snapshot entries live in mem_ (immediately
    /// true for shards with no snapshot entries and after any legacy
    /// recovery).
    bool loaded = true;
    /// Users whose authoritative state is mem_'s (log replay or
    /// post-open mutation): their snapshot index entry, if any, is
    /// stale and skipped at materialization. Cleared once loaded.
    std::unordered_set<int> overlay;
  };
  mutable std::unique_ptr<ShardRecovery[]> recovery_;
  /// Snapshot entries not yet materialized (and not overlaid).
  mutable std::atomic<size_t> pending_entries_{0};
  /// Lock-free mirror of ShardRecovery::loaded for the materializer's
  /// scheduling pass (authoritative state stays under the shard lock).
  mutable std::unique_ptr<std::atomic<bool>[]> loaded_hint_;
  /// Per-shard access counts (Put/Erase/Contains/VisitShard), the
  /// materializer's frequency signal.
  mutable std::unique_ptr<std::atomic<uint64_t>[]> access_count_;

  /// Guards the mapped v2 snapshot (innermost with shard locks:
  /// shard -> snap, never snap -> shard).
  mutable Mutex snap_mu_;
  /// Reset (munmap) once every shard has materialized.
  mutable std::shared_ptr<const MappedSnapshot> snap_
      SLOC_GUARDED_BY(snap_mu_);
  /// Shards not yet loaded.
  mutable size_t shards_pending_ SLOC_GUARDED_BY(snap_mu_) = 0;

  mutable Mutex log_mu_;
  /// Active segment fd.
  int log_fd_ SLOC_GUARDED_BY(log_mu_) = -1;
  /// Live bytes across segments.
  size_t log_bytes_ SLOC_GUARDED_BY(log_mu_) = 0;
  /// Bytes in the active segment.
  size_t active_bytes_ SLOC_GUARDED_BY(log_mu_) = 0;
  /// Live segments in replay order; back() is the active one.
  std::vector<std::string> segments_ SLOC_GUARDED_BY(log_mu_);
  /// Next wal-NNNNNN.log number.
  uint64_t next_segment_seq_ SLOC_GUARDED_BY(log_mu_) = 1;
  /// First I/O failure, latched.
  mutable Status io_status_ SLOC_GUARDED_BY(log_mu_);
  std::atomic<bool> compacting_{false};  ///< one auto-compactor at a time
  // lock-note: compact_mu_ serializes whole Compact() calls against
  // each other; it guards no data (the sweep reads under shard locks
  // and commits under log_mu_), so nothing is GUARDED_BY it.
  Mutex compact_mu_;
  /// Test hook; set before any concurrent use, immutable after.
  std::function<Status(const char*)> compact_fault_;
  std::atomic<size_t> compact_locks_now_{0};
  std::atomic<size_t> compact_locks_max_{0};

  // Group-commit state. append_seq_ counts successful appends (bumped
  // under log_mu_); durable_seq_ trails it to the last covering sync.
  // sync_mu_ guards the waiter map and the sync thread's scheduling;
  // the ACQUIRED_AFTER edge makes log_mu_ -> sync_mu_ the only legal
  // nesting (Append holds it; the reverse is a compile error under
  // -Wthread-safety-beta).
  std::atomic<uint64_t> append_seq_{0};
  std::atomic<uint64_t> durable_seq_{0};
  mutable Mutex sync_mu_ SLOC_ACQUIRED_AFTER(log_mu_);
  // lock-note: both condvars pair with sync_mu_; waits hold it by
  // construction (CondVar::Wait takes the MutexLock).
  CondVar sync_cv_;     ///< wakes the sync thread
  CondVar durable_cv_;  ///< wakes WaitDurable/Drain
  /// Pending notifications keyed by covering ticket.
  std::multimap<uint64_t, std::function<void(Status)>> waiters_
      SLOC_GUARDED_BY(sync_mu_);
  /// First sync failure, latched.
  Status sync_status_ SLOC_GUARDED_BY(sync_mu_);
  /// Destructor -> sync thread.
  bool sync_stop_ SLOC_GUARDED_BY(sync_mu_) = false;
  /// Callbacks in flight outside sync_mu_.
  bool firing_ SLOC_GUARDED_BY(sync_mu_) = false;
  /// WaitDurable/Drain callers skipping the window.
  size_t urgent_ SLOC_GUARDED_BY(sync_mu_) = 0;
  std::thread sync_thread_;

  // Background materializer state.
  std::atomic<bool> mat_stop_{false};
  std::thread mat_thread_;
};

}  // namespace api
}  // namespace sloc

#endif  // SLOC_API_LOG_STORE_H_
