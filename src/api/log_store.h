// Durable ciphertext storage: append-only record log + compacted
// snapshots, with an mmap-indexed snapshot format sized for
// million-user stores.
//
// LogBackedStore wraps the in-memory backends of store.h with a
// write-ahead persistence layer so a service-provider store survives
// process restart (the net/ front-end's durability story):
//
//   * every Put/Erase appends one length-prefixed, checksummed record
//     to <dir>/wal.log before returning — by the time an ingest ack is
//     sent the mutation is in the OS page cache, and on the disk itself
//     when Options::fsync_every_append is set;
//   * when the log grows past Options::compact_log_bytes, the full
//     resident state is written to <dir>/snapshot.bin (tmp + rename, so
//     a crash mid-compaction leaves the old snapshot intact) and the
//     log is truncated;
//   * Open() recovers by loading the snapshot and replaying the log
//     over it. A torn tail — an append cut short by a crash, i.e. an
//     incomplete or checksum-failing record at end-of-file with no
//     valid record anywhere after it — is truncated away and recovery
//     succeeds with every fully-durable record intact. A bad record
//     with intact data after it (trailing records, a valid record
//     boundary inside the extent a corrupted length prefix claims, or
//     an implausibly large declared length) is real corruption and
//     fails recovery with DataLoss: silently skipping it could
//     resurrect a stale location for a user.
//
// Snapshot formats (full byte-level spec: docs/WIRE.md):
//
//   * v2 "SLS2" (SnapshotFormat::kMmap, the default) — a fixed 64-byte
//     header, a per-shard index of (user id, offset, length, checksum)
//     entries sorted by user id, and page-aligned per-shard blob
//     regions. Open() mmaps the file, verifies only the header and
//     index checksums, and materializes resident shards *lazily*: the
//     first scan (or Compact) of a shard faults in and parses just that
//     shard's pages. Recovery of a million-user store is an index read,
//     not a full-file parse; ingest against a freshly recovered store
//     never pays materialization at all (mutations overlay the index).
//     The mapping is released once every shard has materialized.
//   * v1 "SLSS" (SnapshotFormat::kLegacy) — flat count-prefixed
//     entries with a whole-file checksum; reading it means parsing
//     every blob up front. Still read transparently for migration;
//     compaction rewrites the store in the configured format, so one
//     Compact() on a default-options store migrates v1 -> v2.
//
// Record format (little-endian, via common/wire.h):
//   u32 payload_len | payload | u64 fnv1a64(payload)
//   payload: u8 kind (1 = put, 2 = erase) | i32 user_id | [ct blob]
//
// Lazy-load failure semantics: v2 header/index corruption fails Open()
// with DataLoss up front. A corrupt *blob* is only discovered when its
// shard materializes — the store then latches DataLoss in io_status()
// and drops the affected entries rather than serving unverifiable
// ciphertexts. Operators who want the v1-style all-or-nothing check at
// startup set Options::eager_snapshot_load (or call LoadAllShards()
// right after Open and check its Status).
//
// Threading: stronger than the base CiphertextStore contract. Put,
// Erase, Contains, VisitShard, and Compact are internally synchronized
// (per-shard mutexes for resident state, one mutex for the log file).
// A mutation applies to resident state AND appends its log record under
// one shard-lock hold, so per-user log order always matches memory
// order — two racing Puts for the same user can never ack one
// ciphertext and recover the other. Lock order is always
// shards-in-ascending-index-order -> {snapshot mapping, log}: Put/Erase
// take one shard then the log, the compaction sweep takes every shard
// then the log, and auto-compaction runs after the triggering append's
// shard lock is released, so the sweep cannot deadlock against appends.
// size() is an unsynchronized sum — exact once writers quiesce,
// approximate under concurrency.

#ifndef SLOC_API_LOG_STORE_H_
#define SLOC_API_LOG_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "api/store.h"
#include "common/result.h"
#include "pairing/group.h"

namespace sloc {
namespace api {

class LogBackedStore : public CiphertextStore {
 public:
  /// On-disk layout Compact() writes. Both are always readable.
  enum class SnapshotFormat {
    kMmap,    ///< v2 "SLS2": indexed, page-aligned, lazily recoverable
    kLegacy,  ///< v1 "SLSS": flat, whole-file parse on recovery
  };

  struct Options {
    size_t num_shards = 1;  ///< shard count of the resident delegate
    /// Compact (snapshot + truncate) once the log holds this many bytes
    /// appended since the last snapshot; 0 disables auto-compaction
    /// (Compact() stays available).
    size_t compact_log_bytes = 64u << 20;
    /// fsync() the log after every append: survives power loss, not
    /// just process death, at a large throughput cost. Off by default —
    /// process-crash durability (the page cache) is the service-level
    /// guarantee.
    bool fsync_every_append = false;
    /// Format Compact() writes (recovery reads either).
    SnapshotFormat snapshot_format = SnapshotFormat::kMmap;
    /// Materialize every shard inside Open() and fail it on any
    /// corrupt blob, instead of the default lazy per-shard loading.
    /// Restores the v1 all-or-nothing startup check at v1 cost.
    bool eager_snapshot_load = false;
  };

  /// Opens (creating if absent) the store rooted at directory `dir`,
  /// recovering resident state from snapshot + log. The group is needed
  /// to parse recovered ciphertexts and serialize stored ones.
  static Result<std::unique_ptr<LogBackedStore>> Open(
      const std::string& dir, std::shared_ptr<const PairingGroup> group,
      const Options& options);

  ~LogBackedStore() override;

  LogBackedStore(const LogBackedStore&) = delete;
  LogBackedStore& operator=(const LogBackedStore&) = delete;

  // CiphertextStore. Put/Erase append to the log; a failed append
  // (disk full, I/O error) latches io_status() and the mutation still
  // applies in memory, so a degraded store keeps serving while ops see
  // a non-OK status. Against an unmaterialized shard, Put/Erase stay
  // O(1): the mutation lands in resident memory and overlays the
  // snapshot index entry, which is skipped if the shard later loads.
  std::string name() const override { return "log/" + mem_->name(); }
  void Put(int user_id, hve::Ciphertext ct) override;
  bool Erase(int user_id) override;
  bool Contains(int user_id) const override;
  /// Resident + lazily-pending entries (exact once writers quiesce).
  size_t size() const override {
    return mem_->size() + pending_entries_.load(std::memory_order_relaxed);
  }
  size_t num_shards() const override { return mem_->num_shards(); }
  size_t ShardOf(int user_id) const override { return mem_->ShardOf(user_id); }
  /// Holds the shard's mutex for the duration of the visit (and
  /// materializes the shard first when it is lazily pending) — wrap in
  /// a snapshotting store (net::EpochSnapshotStore) when scans must not
  /// block ingest of the same shard.
  void VisitShard(size_t shard,
                  const std::function<void(int, const hve::Ciphertext&)>& fn)
      const override;

  /// Writes the snapshot (Options::snapshot_format) and truncates the
  /// log. Called automatically from Put/Erase past
  /// Options::compact_log_bytes. Materializes every pending shard
  /// first: the snapshot is always the full resident state.
  Status Compact();

  /// Materializes every lazily-pending shard from the mapped snapshot,
  /// releasing the mapping when done. First blob failure (DataLoss) is
  /// returned AND latched in io_status(); loading still completes so
  /// the store is fully resident either way.
  Status LoadAllShards();

  /// Snapshot entries not yet materialized into resident memory
  /// (observability; 0 once every shard has loaded or after any
  /// legacy-format recovery).
  size_t pending_snapshot_entries() const {
    return pending_entries_.load(std::memory_order_relaxed);
  }

  /// First append/compaction/lazy-load failure since Open, or OK.
  /// Durability (or, for lazy-load failures, completeness of the
  /// recovered state) is compromised once non-OK.
  Status io_status() const;

  /// Bytes appended to the log since the last snapshot (observability).
  size_t log_bytes() const;

  const std::string& dir() const { return dir_; }

 private:
  struct MappedSnapshot;

  LogBackedStore(std::string dir, std::shared_ptr<const PairingGroup> group,
                 const Options& options);

  /// Serializes and appends one record; latches io_status_ on failure.
  /// Called with the mutation's shard lock held. Returns true when the
  /// log has grown past the auto-compaction threshold (the caller
  /// compacts after releasing its shard lock).
  bool Append(uint8_t kind, int user_id, const std::vector<uint8_t>& blob);

  /// Loads snapshot + log into mem_ (v2 snapshots: index only, blobs
  /// stay mapped and pending). Truncates a torn log tail in place;
  /// rejects mid-log corruption.
  Status Recover();

  /// Parses + validates a v2 snapshot: maps the file, checks header and
  /// index checksums/bounds, and fills snap_. Blobs are not touched.
  Status RecoverMmapSnapshot(int fd, size_t file_bytes);

  /// Reads + parses a whole v1 snapshot into mem_ (the legacy path).
  Status RecoverLegacySnapshot(const std::vector<uint8_t>& snap);

  /// Materializes one shard from the mapped snapshot into mem_.
  /// Requires shard_mu_[shard]; no-op when already loaded. Corrupt
  /// blobs latch DataLoss and are dropped (see file comment).
  Status EnsureShardLoadedLocked(size_t shard) const;

  /// True when the (unmaterialized) snapshot index holds `user_id` in
  /// `shard`. Requires shard_mu_[shard].
  bool SnapshotIndexHasLocked(size_t shard, int user_id) const;

  /// Threshold-triggered Compact(); collapses a stampede of concurrent
  /// triggers to one sweep and latches io_status_ on failure.
  void AutoCompact();

  std::string dir_;
  std::shared_ptr<const PairingGroup> group_;
  Options options_;
  std::unique_ptr<CiphertextStore> mem_;
  /// Guards resident state per shard (mem_ itself is not thread-safe).
  mutable std::unique_ptr<std::mutex[]> shard_mu_;

  /// Lazy-recovery state per shard, guarded by the matching shard_mu_.
  struct ShardRecovery {
    /// True once the shard's snapshot entries live in mem_ (immediately
    /// true for shards with no snapshot entries and after any legacy
    /// recovery).
    bool loaded = true;
    /// Users whose authoritative state is mem_'s (log replay or
    /// post-open mutation): their snapshot index entry, if any, is
    /// stale and skipped at materialization. Cleared once loaded.
    std::unordered_set<int> overlay;
  };
  mutable std::unique_ptr<ShardRecovery[]> recovery_;
  /// Snapshot entries not yet materialized (and not overlaid).
  mutable std::atomic<size_t> pending_entries_{0};

  /// The mapped v2 snapshot; reset (munmap) once every shard has
  /// materialized. Guarded by snap_mu_ (innermost with shard locks:
  /// shard -> snap, never snap -> shard).
  mutable std::mutex snap_mu_;
  mutable std::shared_ptr<const MappedSnapshot> snap_;
  mutable size_t shards_pending_ = 0;  ///< shards not yet loaded

  mutable std::mutex log_mu_;
  int log_fd_ = -1;           ///< guarded by log_mu_
  size_t log_bytes_ = 0;      ///< appended since last snapshot
  mutable Status io_status_;  ///< first I/O failure, latched
  std::atomic<bool> compacting_{false};  ///< one auto-compactor at a time
};

}  // namespace api
}  // namespace sloc

#endif  // SLOC_API_LOG_STORE_H_
