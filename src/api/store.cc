#include "api/store.h"

#include "common/check.h"

namespace sloc {
namespace api {

// ---------- InMemoryStore ----------

void InMemoryStore::Put(int user_id, hve::Ciphertext ct) {
  users_[user_id] = std::move(ct);
}

bool InMemoryStore::Erase(int user_id) { return users_.erase(user_id) > 0; }

bool InMemoryStore::Contains(int user_id) const {
  return users_.count(user_id) > 0;
}

void InMemoryStore::VisitShard(
    size_t shard,
    const std::function<void(int, const hve::Ciphertext&)>& fn) const {
  SLOC_CHECK(shard == 0) << "in-memory store has a single shard";
  for (const auto& [user_id, ct] : users_) fn(user_id, ct);
}

// ---------- ShardedStore ----------

ShardedStore::ShardedStore(size_t num_shards) {
  SLOC_CHECK(num_shards >= 1) << "store needs at least one shard";
  shards_.resize(num_shards);
}

size_t ShardedStore::ShardOf(int user_id) const {
  // splitmix64 finalizer: user ids are often dense small integers, so a
  // plain modulus would put consecutive ids in consecutive shards and
  // make any id-correlated workload lopsided after deletions.
  uint64_t h = uint64_t(int64_t(user_id));
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return size_t(h % shards_.size());
}

void ShardedStore::Put(int user_id, hve::Ciphertext ct) {
  shards_[ShardOf(user_id)][user_id] = std::move(ct);
}

bool ShardedStore::Erase(int user_id) {
  return shards_[ShardOf(user_id)].erase(user_id) > 0;
}

bool ShardedStore::Contains(int user_id) const {
  return shards_[ShardOf(user_id)].count(user_id) > 0;
}

size_t ShardedStore::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard.size();
  return total;
}

void ShardedStore::VisitShard(
    size_t shard,
    const std::function<void(int, const hve::Ciphertext&)>& fn) const {
  SLOC_CHECK(shard < shards_.size()) << "shard index out of range";
  for (const auto& [user_id, ct] : shards_[shard]) fn(user_id, ct);
}

std::unique_ptr<CiphertextStore> MakeStore(size_t num_shards) {
  if (num_shards <= 1) return std::make_unique<InMemoryStore>();
  return std::make_unique<ShardedStore>(num_shards);
}

}  // namespace api
}  // namespace sloc
