#include "api/log_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/check.h"
#include "common/wire.h"
#include "hve/serialize.h"

namespace sloc {
namespace api {

namespace {

constexpr uint8_t kRecordPut = 1;
constexpr uint8_t kRecordErase = 2;
constexpr uint8_t kSnapshotMagicV1[4] = {'S', 'L', 'S', 'S'};
constexpr uint8_t kSnapshotMagicV2[4] = {'S', 'L', 'S', '2'};
constexpr uint8_t kSnapshotVersionV1 = 1;
constexpr uint8_t kSnapshotVersionV2 = 2;
constexpr uint8_t kManifestMagic[4] = {'S', 'L', 'M', 'F'};
constexpr uint8_t kManifestVersion = 1;
/// A manifest listing more segments than this is corrupt, not big:
/// each entry is one interrupted compaction, and compaction retries
/// reuse the same tail.
constexpr uint32_t kMaxManifestSegments = 1u << 16;

// v2 snapshot geometry (full byte-level spec: docs/WIRE.md#snapshot-v2).
constexpr size_t kV2HeaderBytes = 64;
constexpr size_t kV2EntryBytes = 24;  // i32 user | u64 off | u32 len | u64 fnv
constexpr size_t kV2PageBytes = 4096;
/// num_shards cap for a parsed header: large enough for any deployment,
/// small enough that per-shard arithmetic cannot overflow.
constexpr uint32_t kV2MaxShards = 1u << 20;

/// The initial (and, before any compaction, only) log segment name.
constexpr char kInitialSegment[] = "wal.log";

std::string SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.bin";
}
std::string ManifestPath(const std::string& dir) { return dir + "/MANIFEST"; }

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// Reads the whole file into `out`. NotFound when it does not exist.
Status ReadFile(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(path + " does not exist");
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  out->resize(size_t(size));
  if (size > 0 && !in.read(reinterpret_cast<char*>(out->data()), size)) {
    return Status::Internal("short read of " + path);
  }
  return Status::Ok();
}

Status WriteAll(int fd, const uint8_t* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    done += size_t(n);
  }
  return Status::Ok();
}

/// Writes `bytes` to <path>.tmp, fsyncs, and renames over `path`, so a
/// crash at any point leaves either the old file or the new one —
/// never a torn mix.
Status WriteFileAtomic(const std::string& path,
                       const std::vector<uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open " + tmp);
  Status st = WriteAll(fd, bytes.data(), bytes.size());
  if (st.ok() && ::fsync(fd) != 0) st = Errno("fsync " + tmp);
  if (::close(fd) != 0 && st.ok()) st = Errno("close " + tmp);
  if (!st.ok()) return st;
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("rename " + tmp);
  }
  return Status::Ok();
}

uint32_t ReadLe32(const uint8_t* b) {
  return uint32_t(b[0]) | uint32_t(b[1]) << 8 | uint32_t(b[2]) << 16 |
         uint32_t(b[3]) << 24;
}

uint64_t ReadLe64(const uint8_t* b) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | b[i];
  return v;
}

uint32_t ReadLe32(const std::vector<uint8_t>& b, size_t pos) {
  return ReadLe32(b.data() + pos);
}

uint64_t ReadLe64(const std::vector<uint8_t>& b, size_t pos) {
  return ReadLe64(b.data() + pos);
}

void WriteLe32(uint8_t* b, uint32_t v) {
  for (int i = 0; i < 4; ++i) b[i] = uint8_t(v >> (8 * i));
}

void WriteLe64(uint8_t* b, uint64_t v) {
  for (int i = 0; i < 8; ++i) b[i] = uint8_t(v >> (8 * i));
}

size_t AlignUp(size_t v, size_t align) {
  return (v + align - 1) / align * align;
}

/// Upper bound on a plausible record payload. A record holds one
/// serialized ciphertext plus a few header bytes; a length prefix
/// claiming more than this is a corrupted prefix, not a large record.
constexpr size_t kMaxRecordPayload = 64u << 20;

/// True when a validly-checksummed, plausibly-sized record starts
/// anywhere in [from, log.size()). Intact data after a bad stretch
/// means mid-log corruption rather than a torn tail.
bool HasValidRecordAfter(const std::vector<uint8_t>& log, size_t from) {
  const size_t n = log.size();
  for (size_t p = from; p + 12 <= n; ++p) {
    const size_t len = ReadLe32(log, p);
    if (len > kMaxRecordPayload) continue;
    if (n - p - 4 < len || n - p - 4 - len < 8) continue;
    if (wire::Fnv1a(log.data() + p + 4, len) == ReadLe64(log, p + 4 + len)) {
      return true;
    }
  }
  return false;
}

/// Parses a rotated-segment name ("wal-NNNNNN.log") into its sequence
/// number; returns false for the initial segment and anything else.
bool ParseSegmentSeq(const std::string& name, uint64_t* seq) {
  unsigned long long v = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "wal-%llu.log%n", &v, &consumed) != 1 ||
      size_t(consumed) != name.size()) {
    return false;
  }
  *seq = v;
  return true;
}

std::string SegmentName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

}  // namespace

/// A v2 snapshot file mapped read-only, plus its parsed per-shard index.
/// Blob bytes are only faulted in when a shard materializes. Shared by
/// the store (until every shard has loaded) and any in-flight
/// materialization; the last reference unmaps.
struct LogBackedStore::MappedSnapshot {
  struct Entry {
    int user_id;
    uint64_t offset;  ///< absolute file offset of the blob
    uint32_t len;
    uint64_t fnv;  ///< fnv1a64 of the blob, verified at materialization
  };

  const uint8_t* data = nullptr;
  size_t bytes = 0;
  /// Per shard, sorted by user_id (validated at Open).
  std::vector<std::vector<Entry>> shard_entries;

  ~MappedSnapshot() {
    if (data != nullptr) {
      ::munmap(const_cast<uint8_t*>(data), bytes);
    }
  }
};

LogBackedStore::LogBackedStore(std::string dir,
                               std::shared_ptr<const PairingGroup> group,
                               const Options& options)
    : dir_(std::move(dir)),
      group_(std::move(group)),
      options_(options),
      mem_(MakeStore(options.num_shards == 0 ? 1 : options.num_shards)),
      shard_mu_(std::make_unique<Mutex[]>(mem_->num_shards())),
      recovery_(std::make_unique<ShardRecovery[]>(mem_->num_shards())),
      loaded_hint_(std::make_unique<std::atomic<bool>[]>(mem_->num_shards())),
      access_count_(
          std::make_unique<std::atomic<uint64_t>[]>(mem_->num_shards())) {
  for (size_t s = 0; s < mem_->num_shards(); ++s) {
    loaded_hint_[s].store(true, std::memory_order_relaxed);
    access_count_[s].store(0, std::memory_order_relaxed);
  }
}

Result<std::unique_ptr<LogBackedStore>> LogBackedStore::Open(
    const std::string& dir, std::shared_ptr<const PairingGroup> group,
    const Options& options) {
  if (group == nullptr) return Status::InvalidArgument("null group");
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Errno("mkdir " + dir);
  }
  std::unique_ptr<LogBackedStore> store(
      new LogBackedStore(dir, std::move(group), options));
  {
    // No other thread exists yet, but Recover rebuilds log-guarded
    // state (segments_, byte counters), so hold its lock: the analysis
    // sees one discipline for init and steady state. Released before
    // LoadAllShards, whose shard -> log leg must not nest inside it.
    MutexLock lock(store->log_mu_);
    SLOC_RETURN_IF_ERROR(store->Recover());
  }
  if (options.eager_snapshot_load) {
    // Restore the v1 all-or-nothing startup check: every blob parses
    // and checksums, or Open fails.
    SLOC_RETURN_IF_ERROR(store->LoadAllShards());
  }
  {
    MutexLock lock(store->log_mu_);
    const std::string active = store->SegmentPath(store->segments_.back());
    store->log_fd_ =
        ::open(active.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
    if (store->log_fd_ < 0) return Errno("open " + active);
  }
  if (options.fsync_batch_max > 0) {
    store->sync_thread_ = std::thread(&LogBackedStore::SyncLoop, store.get());
  }
  if (options.background_materialize) {
    bool any_pending;
    {
      MutexLock lock(store->snap_mu_);
      any_pending = store->shards_pending_ > 0;
    }
    if (any_pending) {
      store->mat_thread_ =
          std::thread(&LogBackedStore::MaterializeLoop, store.get());
    }
  }
  return store;
}

LogBackedStore::~LogBackedStore() {
  mat_stop_.store(true, std::memory_order_relaxed);
  if (mat_thread_.joinable()) mat_thread_.join();
  if (sync_thread_.joinable()) {
    {
      MutexLock lock(sync_mu_);
      sync_stop_ = true;
    }
    sync_cv_.NotifyAll();
    sync_thread_.join();
  }
  MutexLock lock(log_mu_);
  if (log_fd_ >= 0) {
    ::fsync(log_fd_);
    ::close(log_fd_);
    log_fd_ = -1;
  }
}

std::string LogBackedStore::SegmentPath(const std::string& name) const {
  return dir_ + "/" + name;
}

Status LogBackedStore::RecoverLegacySnapshot(const std::vector<uint8_t>& snap) {
  auto body = wire::VerifyChecksum(snap);
  if (!body.ok()) {
    return Status::DataLoss("snapshot " + SnapshotPath(dir_) +
                            " failed its checksum: " +
                            body.status().message());
  }
  wire::Reader r(snap, 0, *body);
  SLOC_ASSIGN_OR_RETURN(uint8_t m0, r.U8());
  SLOC_ASSIGN_OR_RETURN(uint8_t m1, r.U8());
  SLOC_ASSIGN_OR_RETURN(uint8_t m2, r.U8());
  SLOC_ASSIGN_OR_RETURN(uint8_t m3, r.U8());
  if (m0 != kSnapshotMagicV1[0] || m1 != kSnapshotMagicV1[1] ||
      m2 != kSnapshotMagicV1[2] || m3 != kSnapshotMagicV1[3]) {
    return Status::DataLoss("bad snapshot magic");
  }
  SLOC_ASSIGN_OR_RETURN(uint8_t version, r.U8());
  if (version != kSnapshotVersionV1) {
    return Status::Unimplemented("snapshot version " +
                                 std::to_string(int(version)));
  }
  SLOC_ASSIGN_OR_RETURN(uint64_t count, r.U64());
  for (uint64_t i = 0; i < count; ++i) {
    SLOC_ASSIGN_OR_RETURN(int user_id, r.I32());
    SLOC_ASSIGN_OR_RETURN(std::vector<uint8_t> blob, r.Bytes());
    SLOC_ASSIGN_OR_RETURN(hve::Ciphertext ct,
                          hve::ParseCiphertext(*group_, blob));
    mem_->Put(user_id, std::move(ct));
  }
  return r.ExpectDone();
}

Status LogBackedStore::RecoverMmapSnapshot(int fd, size_t file_bytes) {
  const std::string path = SnapshotPath(dir_);
  if (file_bytes < kV2HeaderBytes) {
    return Status::DataLoss("snapshot " + path + " truncated inside header (" +
                            std::to_string(file_bytes) + " bytes)");
  }
  void* map = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map == MAP_FAILED) return Errno("mmap " + path);
  auto snap = std::make_shared<MappedSnapshot>();
  snap->data = static_cast<const uint8_t*>(map);
  snap->bytes = file_bytes;
  const uint8_t* d = snap->data;

  // Header: magic(4) version(1) pad(3) num_shards(u32 @8) count(u64 @12)
  // index_offset(u64 @20) index_bytes(u64 @28) blob_region_offset(u64
  // @36) file_bytes(u64 @44) pad(4) fnv1a64 of bytes [0,56) @56.
  if (d[4] != kSnapshotVersionV2) {
    return Status::Unimplemented("snapshot version " +
                                 std::to_string(int(d[4])));
  }
  if (wire::Fnv1a(d, 56) != ReadLe64(d + 56)) {
    return Status::DataLoss("snapshot " + path + " header failed its checksum");
  }
  const uint32_t file_shards = ReadLe32(d + 8);
  const uint64_t count = ReadLe64(d + 12);
  const uint64_t index_offset = ReadLe64(d + 20);
  const uint64_t index_bytes = ReadLe64(d + 28);
  const uint64_t blob_region_offset = ReadLe64(d + 36);
  const uint64_t declared_bytes = ReadLe64(d + 44);
  if (declared_bytes != file_bytes) {
    return Status::DataLoss("snapshot " + path + " declares " +
                            std::to_string(declared_bytes) + " bytes but is " +
                            std::to_string(file_bytes));
  }
  if (file_shards == 0 || file_shards > kV2MaxShards) {
    return Status::DataLoss("snapshot " + path + " declares implausible " +
                            std::to_string(file_shards) + " shards");
  }
  if (index_offset != kV2HeaderBytes ||
      index_bytes < uint64_t(file_shards) * 8 + 8 ||
      index_bytes > file_bytes - kV2HeaderBytes ||
      count != (index_bytes - uint64_t(file_shards) * 8 - 8) / kV2EntryBytes ||
      index_bytes !=
          uint64_t(file_shards) * 8 + count * kV2EntryBytes + 8 ||
      blob_region_offset < kV2HeaderBytes + index_bytes ||
      blob_region_offset > file_bytes ||
      blob_region_offset % kV2PageBytes != 0) {
    return Status::DataLoss("snapshot " + path + " index geometry is invalid");
  }
  const uint8_t* index = d + kV2HeaderBytes;
  if (wire::Fnv1a(index, index_bytes - 8) !=
      ReadLe64(index + index_bytes - 8)) {
    return Status::DataLoss("snapshot " + path + " index failed its checksum");
  }

  // Parse the per-shard entry lists. Blobs are not touched here — only
  // bounds, ordering, and (when shard counts match) placement are
  // validated, so a million-user open is an index scan, not a parse.
  uint64_t counted = 0;
  snap->shard_entries.resize(file_shards);
  std::vector<uint64_t> shard_counts(file_shards);
  const uint8_t* p = index;
  for (uint32_t s = 0; s < file_shards; ++s, p += 8) {
    shard_counts[s] = ReadLe64(p);
    if (shard_counts[s] > count - counted) {  // overflow-safe sum <= count
      return Status::DataLoss("snapshot " + path +
                              " per-shard counts exceed entry count");
    }
    counted += shard_counts[s];
    snap->shard_entries[s].reserve(size_t(shard_counts[s]));
  }
  if (counted != count) {
    return Status::DataLoss("snapshot " + path +
                            " per-shard counts do not sum to entry count");
  }
  const bool same_sharding = file_shards == mem_->num_shards();
  for (uint32_t s = 0; s < file_shards; ++s) {
    for (uint64_t i = 0; i < shard_counts[s]; ++i, p += kV2EntryBytes) {
      MappedSnapshot::Entry e;
      e.user_id = int(int32_t(ReadLe32(p)));
      e.offset = ReadLe64(p + 4);
      e.len = ReadLe32(p + 12);
      e.fnv = ReadLe64(p + 16);
      if (e.offset < blob_region_offset || e.offset > file_bytes ||
          uint64_t(e.len) > file_bytes - e.offset) {
        return Status::DataLoss("snapshot " + path + " entry for user " +
                                std::to_string(e.user_id) +
                                " points outside the blob region");
      }
      if (!snap->shard_entries[s].empty() &&
          snap->shard_entries[s].back().user_id >= e.user_id) {
        return Status::DataLoss("snapshot " + path + " shard " +
                                std::to_string(s) +
                                " index is not sorted by user id");
      }
      if (same_sharding && mem_->ShardOf(e.user_id) != s) {
        return Status::DataLoss("snapshot " + path + " entry for user " +
                                std::to_string(e.user_id) +
                                " filed under the wrong shard");
      }
      snap->shard_entries[s].push_back(e);
    }
  }

  if (!same_sharding) {
    // The file's index is useless under a different shard count:
    // materialize everything now, re-sharded by mem_. Documented as the
    // one recovery shape that pays the full eager parse.
    std::vector<uint8_t> scratch;
    for (const auto& entries : snap->shard_entries) {
      for (const auto& e : entries) {
        const uint8_t* blob = d + e.offset;
        if (wire::Fnv1a(blob, e.len) != e.fnv) {
          return Status::DataLoss("snapshot " + path + " blob for user " +
                                  std::to_string(e.user_id) +
                                  " failed its checksum");
        }
        scratch.assign(blob, blob + e.len);
        SLOC_ASSIGN_OR_RETURN(hve::Ciphertext ct,
                              hve::ParseCiphertext(*group_, scratch));
        mem_->Put(e.user_id, std::move(ct));
      }
    }
    return Status::Ok();  // snap unmaps at scope exit
  }

  // Same sharding: install the mapping and mark populated shards
  // lazily pending.
  size_t pending_shards = 0;
  for (uint32_t s = 0; s < file_shards; ++s) {
    if (!snap->shard_entries[s].empty()) {
      recovery_[s].loaded = false;
      loaded_hint_[s].store(false, std::memory_order_relaxed);
      ++pending_shards;
    }
  }
  pending_entries_.store(size_t(count), std::memory_order_relaxed);
  {
    MutexLock lock(snap_mu_);
    snap_ = std::move(snap);
    shards_pending_ = pending_shards;
  }
  return Status::Ok();
}

Status LogBackedStore::ReplaySegment(const std::string& path, bool last) {
  // `valid_end` advances past every intact record; a bad record that
  // runs to end-of-file WITH no valid record anywhere after it is a
  // torn append (crash mid-write) and — in the last segment only — is
  // truncated away. A bad record with intact data after it, or any
  // damage in a non-last segment (those were fsynced at rotation), is
  // corruption and rejects recovery.
  //
  // Replayed users land in their shard's overlay: their log-derived
  // state in mem_ supersedes any snapshot index entry, which is skipped
  // if the shard later materializes.
  std::vector<uint8_t> log;
  Status log_st = ReadFile(path, &log);
  if (!log_st.ok()) {
    // The active segment may simply not exist yet; a missing rotated
    // segment means the manifest and the directory disagree.
    if (last) return Status::Ok();
    return Status::DataLoss("manifest lists " + path +
                            " but it is missing: " + log_st.message());
  }
  const size_t n = log.size();
  size_t pos = 0;
  size_t valid_end = 0;
  while (pos < n) {
    const size_t start = pos;
    // Incomplete length prefix, payload, or checksum at end-of-file:
    // torn tail.
    if (n - start < 4) break;
    const uint32_t len = ReadLe32(log, start);
    if (size_t(len) > kMaxRecordPayload) {
      // No legitimate append ever writes a record this large, and a
      // torn append leaves a correct prefix — this prefix is corrupt.
      return Status::DataLoss("log record at byte " + std::to_string(start) +
                              " of " + path + " declares an implausible " +
                              std::to_string(len) +
                              "-byte payload (corrupted length prefix)");
    }
    if (n - start - 4 < size_t(len) || n - start - 4 - len < 8) {
      // Declared extent runs past end-of-file. Only a torn tail if
      // nothing valid follows; otherwise the prefix swallowed real
      // records.
      if (HasValidRecordAfter(log, start + 1)) {
        return Status::DataLoss(
            "log record at byte " + std::to_string(start) + " of " + path +
            " runs past end-of-file but intact records follow "
            "(corrupted length prefix)");
      }
      break;
    }
    const size_t payload_at = start + 4;
    const uint64_t want = ReadLe64(log, payload_at + len);
    const uint64_t got = wire::Fnv1a(log.data() + payload_at, len);
    const size_t record_end = payload_at + len + 8;
    if (got != want) {
      // Torn tail only when the bad record is the last thing in the
      // file and no valid record boundary hides inside its extent.
      if (record_end >= n && !HasValidRecordAfter(log, start + 1)) break;
      return Status::DataLoss(
          "log record at byte " + std::to_string(start) + " of " + path +
          " failed its checksum with intact log after it "
          "(mid-log corruption)");
    }
    wire::Reader r(log, payload_at, payload_at + len);
    SLOC_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
    SLOC_ASSIGN_OR_RETURN(int user_id, r.I32());
    const size_t shard = mem_->ShardOf(user_id);
    ShardRecovery& rec = recovery_[shard];
    if (!rec.loaded && rec.overlay.insert(user_id).second &&
        SnapshotIndexHasLocked(shard, user_id)) {
      pending_entries_.fetch_sub(1, std::memory_order_relaxed);
    }
    switch (kind) {
      case kRecordPut: {
        SLOC_ASSIGN_OR_RETURN(std::vector<uint8_t> blob, r.Bytes());
        SLOC_ASSIGN_OR_RETURN(hve::Ciphertext ct,
                              hve::ParseCiphertext(*group_, blob));
        mem_->Put(user_id, std::move(ct));
        break;
      }
      case kRecordErase:
        mem_->Erase(user_id);
        break;
      default:
        return Status::DataLoss("unknown log record kind " +
                                std::to_string(int(kind)));
    }
    SLOC_RETURN_IF_ERROR(r.ExpectDone());
    pos = record_end;
    valid_end = record_end;
  }
  if (valid_end < n) {
    if (!last) {
      return Status::DataLoss("rotated segment " + path +
                              " has a torn tail; it was fsynced at rotation, "
                              "so this is corruption");
    }
    if (::truncate(path.c_str(), off_t(valid_end)) != 0) {
      return Errno("truncate torn tail of " + path);
    }
  }
  log_bytes_ += valid_end;
  if (last) active_bytes_ = valid_end;
  return Status::Ok();
}

Status LogBackedStore::Recover() {
  // 1. Snapshot, if one has been compacted. A corrupt snapshot is not
  // recoverable (the log only holds mutations since it was taken).
  // Dispatch on magic: v2 "SLS2" maps the file and defers blob parsing
  // per shard; v1 "SLSS" (and anything unrecognized) takes the legacy
  // whole-file read + parse.
  const int snap_fd = ::open(SnapshotPath(dir_).c_str(), O_RDONLY);
  if (snap_fd >= 0) {
    struct stat st;
    if (::fstat(snap_fd, &st) != 0) {
      const Status err = Errno("fstat " + SnapshotPath(dir_));
      ::close(snap_fd);
      return err;
    }
    const size_t file_bytes = size_t(st.st_size);
    uint8_t magic[4] = {0, 0, 0, 0};
    const bool is_v2 =
        file_bytes >= 4 && ::pread(snap_fd, magic, 4, 0) == 4 &&
        std::memcmp(magic, kSnapshotMagicV2, 4) == 0;
    Status snap_st;
    if (is_v2) {
      snap_st = RecoverMmapSnapshot(snap_fd, file_bytes);
    } else {
      std::vector<uint8_t> snap;
      snap_st = ReadFile(SnapshotPath(dir_), &snap);
      if (snap_st.ok()) snap_st = RecoverLegacySnapshot(snap);
    }
    ::close(snap_fd);
    SLOC_RETURN_IF_ERROR(snap_st);
  }

  // 2. The manifest names the live segments in replay order; a store
  // that has never rotated has no manifest and implicitly owns
  // [wal.log] (docs/WIRE.md#manifest).
  segments_.clear();
  std::vector<uint8_t> mf;
  const Status mf_st = ReadFile(ManifestPath(dir_), &mf);
  if (mf_st.ok()) {
    auto body = wire::VerifyChecksum(mf);
    if (!body.ok()) {
      return Status::DataLoss("manifest " + ManifestPath(dir_) +
                              " failed its checksum: " +
                              body.status().message());
    }
    wire::Reader r(mf, 0, *body);
    SLOC_ASSIGN_OR_RETURN(uint8_t m0, r.U8());
    SLOC_ASSIGN_OR_RETURN(uint8_t m1, r.U8());
    SLOC_ASSIGN_OR_RETURN(uint8_t m2, r.U8());
    SLOC_ASSIGN_OR_RETURN(uint8_t m3, r.U8());
    if (m0 != kManifestMagic[0] || m1 != kManifestMagic[1] ||
        m2 != kManifestMagic[2] || m3 != kManifestMagic[3]) {
      return Status::DataLoss("bad manifest magic");
    }
    SLOC_ASSIGN_OR_RETURN(uint8_t version, r.U8());
    if (version != kManifestVersion) {
      return Status::Unimplemented("manifest version " +
                                   std::to_string(int(version)));
    }
    SLOC_ASSIGN_OR_RETURN(uint32_t count, r.U32());
    if (count == 0 || count > kMaxManifestSegments) {
      return Status::DataLoss("manifest lists implausible " +
                              std::to_string(count) + " segments");
    }
    for (uint32_t i = 0; i < count; ++i) {
      SLOC_ASSIGN_OR_RETURN(std::string name, r.Str());
      if (name.empty() || name.find('/') != std::string::npos) {
        return Status::DataLoss("manifest segment name \"" + name +
                                "\" is not a plain file name");
      }
      segments_.push_back(std::move(name));
    }
    SLOC_RETURN_IF_ERROR(r.ExpectDone());
  } else {
    segments_.push_back(kInitialSegment);
  }
  for (const std::string& name : segments_) {
    uint64_t seq = 0;
    if (ParseSegmentSeq(name, &seq) && seq >= next_segment_seq_) {
      next_segment_seq_ = seq + 1;
    }
  }

  // 3. Replay the segments in manifest order. Re-applying a record the
  // snapshot already folded in is harmless — last record per user wins,
  // and per-user order is preserved across segments.
  log_bytes_ = 0;
  active_bytes_ = 0;
  for (size_t i = 0; i < segments_.size(); ++i) {
    SLOC_RETURN_IF_ERROR(
        ReplaySegment(SegmentPath(segments_[i]), i + 1 == segments_.size()));
  }

  // 4. Retire stray segment files the manifest does not own: leftovers
  // of a compaction that crashed between writing the shrunk manifest
  // and unlinking, or of a rotation that crashed before committing its
  // fresh segment. Their records are either folded into the snapshot
  // or were never acked under a committed manifest.
  DIR* d = ::opendir(dir_.c_str());
  if (d != nullptr) {
    std::vector<std::string> strays;
    while (struct dirent* ent = ::readdir(d)) {
      const std::string name = ent->d_name;
      const bool wal_like =
          name == kInitialSegment ||
          (name.size() > 8 && name.compare(0, 4, "wal-") == 0 &&
           name.compare(name.size() - 4, 4, ".log") == 0);
      if (wal_like &&
          std::find(segments_.begin(), segments_.end(), name) ==
              segments_.end()) {
        strays.push_back(name);
      }
    }
    ::closedir(d);
    for (const std::string& name : strays) {
      ::unlink(SegmentPath(name).c_str());
    }
  }
  return Status::Ok();
}

bool LogBackedStore::SnapshotIndexHasLocked(size_t shard, int user_id) const {
  std::shared_ptr<const MappedSnapshot> snap;
  {
    MutexLock lock(snap_mu_);
    snap = snap_;
  }
  if (snap == nullptr) return false;
  const auto& entries = snap->shard_entries[shard];
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), user_id,
      [](const MappedSnapshot::Entry& e, int id) { return e.user_id < id; });
  return it != entries.end() && it->user_id == user_id;
}

Status LogBackedStore::EnsureShardLoadedLocked(size_t shard) const {
  ShardRecovery& rec = recovery_[shard];
  if (rec.loaded) return Status::Ok();
  std::shared_ptr<const MappedSnapshot> snap;
  {
    MutexLock lock(snap_mu_);
    snap = snap_;
  }
  Status first;
  if (snap != nullptr) {
    // Parse this shard's blobs out of the mapping. A corrupt blob is
    // dropped (never served unverified) and DataLoss latched; the rest
    // of the shard still loads so one bad entry does not take down the
    // whole shard's residents.
    std::vector<uint8_t> scratch;
    for (const MappedSnapshot::Entry& e : snap->shard_entries[shard]) {
      if (rec.overlay.count(e.user_id) != 0) continue;  // superseded
      Status st;
      const uint8_t* blob = snap->data + e.offset;
      if (wire::Fnv1a(blob, e.len) != e.fnv) {
        st = Status::DataLoss("snapshot blob for user " +
                              std::to_string(e.user_id) +
                              " failed its checksum");
      } else {
        scratch.assign(blob, blob + e.len);
        auto ct = hve::ParseCiphertext(*group_, scratch);
        if (ct.ok()) {
          mem_->Put(e.user_id, std::move(*ct));
        } else {
          st = ct.status();
        }
      }
      pending_entries_.fetch_sub(1, std::memory_order_relaxed);
      if (!st.ok() && first.ok()) first = st;
    }
  }
  rec.loaded = true;
  rec.overlay = {};
  loaded_hint_[shard].store(true, std::memory_order_relaxed);
  {
    MutexLock lock(snap_mu_);
    if (shards_pending_ > 0 && --shards_pending_ == 0) {
      snap_.reset();  // every shard resident: release the mapping
    }
  }
  if (!first.ok()) {
    MutexLock lock(log_mu_);
    if (io_status_.ok()) io_status_ = first;
  }
  return first;
}

Status LogBackedStore::LoadAllShards() {
  Status first;
  for (size_t shard = 0; shard < mem_->num_shards(); ++shard) {
    MutexLock lock(shard_mu_[shard]);
    const Status st = EnsureShardLoadedLocked(shard);
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

bool LogBackedStore::Append(uint8_t kind, int user_id,
                            const std::vector<uint8_t>& blob) {
  wire::Writer payload;
  payload.U8(kind);
  payload.I32(user_id);
  if (kind == kRecordPut) payload.Bytes(blob);
  const std::vector<uint8_t>& p = payload.buf();
  wire::Writer record;
  record.U32(uint32_t(p.size()));
  record.Raw(p.data(), p.size());
  record.U64(wire::Fnv1a(p.data(), p.size()));

  const bool group = options_.fsync_batch_max > 0;
  MutexLock lock(log_mu_);
  if (log_fd_ < 0) {
    if (io_status_.ok()) {
      io_status_ = Status::FailedPrecondition("log file is closed");
    }
    return false;
  }
  Status st = WriteAll(log_fd_, record.buf().data(), record.buf().size());
  if (st.ok() && options_.fsync_every_append && !group &&
      ::fsync(log_fd_) != 0) {
    st = Errno("fsync " + SegmentPath(segments_.back()));
  }
  if (!st.ok()) {
    if (io_status_.ok()) io_status_ = st;
    if (group) {
      // The record never made it into the segment, so no future sync
      // covers it: latch the sync error so deferred acks report the
      // lost write instead of calling it durable.
      MutexLock sync_lock(sync_mu_);
      if (sync_status_.ok()) sync_status_ = st;
      sync_cv_.NotifyAll();
    }
    return false;
  }
  log_bytes_ += record.buf().size();
  active_bytes_ += record.buf().size();
  const uint64_t seq = append_seq_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (group) {
    sync_cv_.NotifyOne();
  } else {
    // Without a sync thread the durability horizon IS the append
    // horizon (page cache, or the disk under fsync_every_append).
    durable_seq_.store(seq, std::memory_order_release);
  }
  return options_.compact_log_bytes != 0 &&
         log_bytes_ >= options_.compact_log_bytes;
}

void LogBackedStore::Put(int user_id, hve::Ciphertext ct) {
  // Serialize outside any lock (the expensive part). Resident apply and
  // log append happen together under the shard lock, so for any one
  // user the log order always matches the memory order — recovery can
  // never resurrect a ciphertext the acked state had already replaced.
  // An unmaterialized shard is NOT loaded here: the new ciphertext
  // overlays the snapshot index entry, keeping recovered-store ingest
  // O(1) per put.
  const std::vector<uint8_t> blob = hve::SerializeCiphertext(*group_, ct);
  bool compact_due;
  {
    const size_t shard = mem_->ShardOf(user_id);
    access_count_[shard].fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(shard_mu_[shard]);
    ShardRecovery& rec = recovery_[shard];
    if (!rec.loaded && rec.overlay.insert(user_id).second &&
        SnapshotIndexHasLocked(shard, user_id)) {
      pending_entries_.fetch_sub(1, std::memory_order_relaxed);
    }
    mem_->Put(user_id, std::move(ct));
    compact_due = Append(kRecordPut, user_id, blob);
  }
  if (compact_due) AutoCompact();
}

bool LogBackedStore::Erase(int user_id) {
  bool existed;
  bool compact_due = false;
  {
    const size_t shard = mem_->ShardOf(user_id);
    access_count_[shard].fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(shard_mu_[shard]);
    ShardRecovery& rec = recovery_[shard];
    if (rec.loaded || rec.overlay.count(user_id) != 0) {
      existed = mem_->Erase(user_id);
    } else {
      // Unmaterialized and not yet overlaid: existence is answered by
      // the snapshot index, and the overlay mark makes the erase stick
      // without ever parsing the blob.
      existed = SnapshotIndexHasLocked(shard, user_id);
      rec.overlay.insert(user_id);
      if (existed) pending_entries_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (existed) compact_due = Append(kRecordErase, user_id, {});
  }
  if (compact_due) AutoCompact();
  return existed;
}

bool LogBackedStore::Contains(int user_id) const {
  const size_t shard = mem_->ShardOf(user_id);
  access_count_[shard].fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(shard_mu_[shard]);
  const ShardRecovery& rec = recovery_[shard];
  if (rec.loaded || rec.overlay.count(user_id) != 0) {
    return mem_->Contains(user_id);
  }
  return SnapshotIndexHasLocked(shard, user_id);
}

void LogBackedStore::VisitShard(
    size_t shard,
    const std::function<void(int, const hve::Ciphertext&)>& fn) const {
  access_count_[shard].fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(shard_mu_[shard]);
  EnsureShardLoadedLocked(shard);  // failure latched in io_status_
  mem_->VisitShard(shard, fn);
}

// ---------------------------------------------------------------------------
// Group commit.

void LogBackedStore::NotifyDurable(uint64_t ticket,
                                   std::function<void(Status)> fn) {
  if (options_.fsync_batch_max == 0) {
    // Durable at append: fire in place, reporting the store's latched
    // health so a degraded store cannot call a lost write durable.
    fn(io_status());
    return;
  }
  Status fire;
  {
    MutexLock lock(sync_mu_);
    if (sync_status_.ok() &&
        durable_seq_.load(std::memory_order_relaxed) < ticket) {
      waiters_.emplace(ticket, std::move(fn));
      return;  // the sync thread fires it after the covering fsync
    }
    fire = sync_status_;
  }
  fn(fire);
}

Status LogBackedStore::WaitDurable(uint64_t ticket) {
  if (options_.fsync_batch_max == 0) return io_status();
  MutexLock lock(sync_mu_);
  ++urgent_;
  sync_cv_.NotifyAll();  // close the gather window early
  while (durable_seq_.load(std::memory_order_relaxed) < ticket &&
         sync_status_.ok()) {
    durable_cv_.Wait(lock);
  }
  --urgent_;
  return sync_status_;
}

void LogBackedStore::DrainNotifications() {
  if (options_.fsync_batch_max == 0) return;
  MutexLock lock(sync_mu_);
  ++urgent_;
  sync_cv_.NotifyAll();
  while (!(waiters_.empty() && !firing_ &&
           (!sync_status_.ok() ||
            durable_seq_.load(std::memory_order_relaxed) >=
                append_seq_.load(std::memory_order_relaxed)))) {
    durable_cv_.Wait(lock);
  }
  --urgent_;
}

Status LogBackedStore::SyncNow(uint64_t* covered) {
  MutexLock lock(log_mu_);
  // Appends also hold log_mu_, so the sequence read here is exactly
  // what is in the file when the fsync below runs.
  *covered = append_seq_.load(std::memory_order_relaxed);
  if (log_fd_ < 0) {
    return Status::FailedPrecondition("log file is closed");
  }
  if (::fsync(log_fd_) != 0) {
    const Status st = Errno("fsync " + SegmentPath(segments_.back()));
    if (io_status_.ok()) io_status_ = st;
    return st;
  }
  return Status::Ok();
}

void LogBackedStore::CompleteSync(uint64_t covered, Status st) {
  MutexLock lock(sync_mu_);
  if (!st.ok() && sync_status_.ok()) sync_status_ = st;
  uint64_t durable = durable_seq_.load(std::memory_order_relaxed);
  if (st.ok() && covered > durable) {
    durable = covered;
    durable_seq_.store(covered, std::memory_order_release);
  }
  const Status err = sync_status_;
  std::vector<std::function<void(Status)>> due;
  auto it = waiters_.begin();
  while (it != waiters_.end() && (!err.ok() || it->first <= durable)) {
    due.push_back(std::move(it->second));
    it = waiters_.erase(it);
  }
  if (!due.empty()) {
    // Callbacks run without sync_mu_ so they may take their own locks
    // (the server's reply queues); firing_ keeps DrainNotifications
    // honest about callbacks in flight.
    firing_ = true;
    lock.Unlock();
    for (auto& fn : due) fn(err);
    lock.Lock();
    firing_ = false;
  }
  durable_cv_.NotifyAll();
}

bool LogBackedStore::SyncPendingLocked() const {
  // After a latched sync failure there is nothing useful to sync:
  // every waiter (present and future) fails fast instead.
  return sync_status_.ok() &&
         durable_seq_.load(std::memory_order_relaxed) <
             append_seq_.load(std::memory_order_acquire);
}

void LogBackedStore::SyncLoop() {
  // All waits are explicit while-loops (not predicate lambdas) so the
  // guarded reads sit in this REQUIRES-visible scope; see
  // common/thread_annotations.h.
  const auto interval = std::chrono::microseconds(options_.fsync_interval_us);
  MutexLock lock(sync_mu_);
  for (;;) {
    while (!(sync_stop_ || SyncPendingLocked() ||
             (!sync_status_.ok() && !waiters_.empty()))) {
      sync_cv_.Wait(lock);
    }
    if (!sync_status_.ok()) {
      if (!waiters_.empty()) {
        lock.Unlock();
        CompleteSync(0, Status::Ok());  // drains everyone with the error
        lock.Lock();
      }
      if (sync_stop_) return;
      continue;
    }
    if (SyncPendingLocked()) {
      // The gather window: wait for the batch to fill or the interval
      // to expire — unless shutdown or an urgent waiter wants the
      // fsync now.
      const auto backlog = [this] {
        return append_seq_.load(std::memory_order_relaxed) -
               durable_seq_.load(std::memory_order_relaxed);
      };  // atomics only — safe in a lambda
      if (!sync_stop_ && urgent_ == 0 && backlog() < options_.fsync_batch_max) {
        const auto deadline = std::chrono::steady_clock::now() + interval;
        while (!(sync_stop_ || urgent_ > 0 ||
                 backlog() >= options_.fsync_batch_max)) {
          if (sync_cv_.WaitUntil(lock, deadline) == std::cv_status::timeout) {
            break;
          }
        }
      }
      lock.Unlock();
      uint64_t covered = 0;
      const Status st = SyncNow(&covered);
      CompleteSync(covered, st);
      lock.Lock();
    }
    if (sync_stop_ && !SyncPendingLocked()) return;
  }
}

// ---------------------------------------------------------------------------
// Background materialization.

void LogBackedStore::MaterializeLoop() {
  const size_t ns = mem_->num_shards();
  while (!mat_stop_.load(std::memory_order_relaxed)) {
    std::shared_ptr<const MappedSnapshot> snap;
    {
      MutexLock lock(snap_mu_);
      if (shards_pending_ == 0) return;
      snap = snap_;
    }
    if (snap == nullptr) return;
    // Most-accessed pending shard first (entry count as tiebreak): the
    // shards ingest and scans keep touching converge to steady-state
    // latency soonest. Hints are racy by design — a shard that loads
    // under us is a cheap no-op below.
    size_t best = ns;
    uint64_t best_access = 0;
    size_t best_entries = 0;
    for (size_t s = 0; s < ns; ++s) {
      if (loaded_hint_[s].load(std::memory_order_relaxed)) continue;
      const uint64_t access = access_count_[s].load(std::memory_order_relaxed);
      const size_t entries = snap->shard_entries[s].size();
      if (best == ns || access > best_access ||
          (access == best_access && entries > best_entries)) {
        best = s;
        best_access = access;
        best_entries = entries;
      }
    }
    if (best == ns) return;
    MutexLock lock(shard_mu_[best]);
    EnsureShardLoadedLocked(best);  // failure latched in io_status_
  }
}

// ---------------------------------------------------------------------------
// Compaction.

void LogBackedStore::AutoCompact() {
  // Concurrent writers crossing the threshold together would all run
  // the sweep; one compactor at a time is enough (the log only shrinks
  // when it succeeds).
  if (compacting_.exchange(true)) return;
  Status st = Compact();
  compacting_.store(false);
  if (!st.ok()) {
    MutexLock lock(log_mu_);
    if (io_status_.ok()) io_status_ = st;
  }
}

namespace {

/// Serializes the collected state in the v1 "SLSS" layout (flat
/// count-prefixed entries, whole-file checksum).
std::vector<uint8_t> BuildLegacySnapshot(
    const std::vector<std::vector<std::pair<int, std::vector<uint8_t>>>>&
        shards,
    size_t count) {
  wire::Writer w;
  w.Raw(kSnapshotMagicV1, 4);
  w.U8(kSnapshotVersionV1);
  w.U64(count);
  for (const auto& shard : shards) {
    for (const auto& entry : shard) {
      w.I32(entry.first);
      w.Bytes(entry.second);
    }
  }
  std::vector<uint8_t> snap = w.Take();
  wire::AppendChecksum(&snap);
  return snap;
}

/// Serializes the collected state in the v2 "SLS2" layout: 64-byte
/// header, per-shard index sorted by user id, page-aligned per-shard
/// blob regions (docs/WIRE.md#snapshot-v2). Entries within each shard
/// must already be sorted by user id.
std::vector<uint8_t> BuildMmapSnapshot(
    const std::vector<std::vector<std::pair<int, std::vector<uint8_t>>>>&
        shards,
    size_t count) {
  const size_t ns = shards.size();
  const size_t index_bytes = ns * 8 + count * kV2EntryBytes + 8;
  const size_t blob_region_offset =
      AlignUp(kV2HeaderBytes + index_bytes, kV2PageBytes);

  // Lay out blob offsets: each shard's sub-region starts on a page
  // boundary so materializing one shard faults only its own pages.
  std::vector<uint64_t> offsets;
  offsets.reserve(count);
  size_t cur = blob_region_offset;
  for (const auto& shard : shards) {
    cur = AlignUp(cur, kV2PageBytes);
    for (const auto& entry : shard) {
      offsets.push_back(cur);
      cur += entry.second.size();
    }
  }
  const size_t file_bytes = cur;

  std::vector<uint8_t> out(file_bytes, 0);
  std::memcpy(out.data(), kSnapshotMagicV2, 4);
  out[4] = kSnapshotVersionV2;
  WriteLe32(out.data() + 8, uint32_t(ns));
  WriteLe64(out.data() + 12, count);
  WriteLe64(out.data() + 20, kV2HeaderBytes);
  WriteLe64(out.data() + 28, index_bytes);
  WriteLe64(out.data() + 36, blob_region_offset);
  WriteLe64(out.data() + 44, file_bytes);
  WriteLe64(out.data() + 56, wire::Fnv1a(out.data(), 56));

  uint8_t* p = out.data() + kV2HeaderBytes;
  for (const auto& shard : shards) {
    WriteLe64(p, shard.size());
    p += 8;
  }
  size_t i = 0;
  for (const auto& shard : shards) {
    for (const auto& entry : shard) {
      const std::vector<uint8_t>& blob = entry.second;
      WriteLe32(p, uint32_t(entry.first));
      WriteLe64(p + 4, offsets[i]);
      WriteLe32(p + 12, uint32_t(blob.size()));
      WriteLe64(p + 16, wire::Fnv1a(blob.data(), blob.size()));
      p += kV2EntryBytes;
      std::memcpy(out.data() + offsets[i], blob.data(), blob.size());
      ++i;
    }
  }
  WriteLe64(p, wire::Fnv1a(out.data() + kV2HeaderBytes, index_bytes - 8));
  return out;
}

}  // namespace

Status LogBackedStore::WriteManifest(const std::vector<std::string>& segments) {
  wire::Writer w;
  w.Raw(kManifestMagic, 4);
  w.U8(kManifestVersion);
  w.U32(uint32_t(segments.size()));
  for (const std::string& name : segments) w.Str(name);
  std::vector<uint8_t> bytes = w.Take();
  wire::AppendChecksum(&bytes);
  return WriteFileAtomic(ManifestPath(dir_), bytes);
}

Status LogBackedStore::RotateLog() {
  uint64_t covered = 0;
  {
    MutexLock lock(log_mu_);
    if (log_fd_ < 0) return Status::FailedPrecondition("log file is closed");
    covered = append_seq_.load(std::memory_order_relaxed);
    // Everything appended so far rides the retiring segment (or an
    // older one): fsync makes the whole prefix durable, which is what
    // lets recovery treat damage in a rotated segment as corruption.
    if (::fsync(log_fd_) != 0) {
      const Status st = Errno("fsync " + SegmentPath(segments_.back()));
      if (io_status_.ok()) io_status_ = st;
      return st;
    }
    const std::string name = SegmentName(next_segment_seq_);
    // O_TRUNC: a same-named stray (from a rotation that failed before
    // committing its manifest) is dead by definition.
    const int fd = ::open(SegmentPath(name).c_str(),
                          O_WRONLY | O_APPEND | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return Errno("open " + SegmentPath(name));
    std::vector<std::string> next = segments_;
    next.push_back(name);
    const Status st = WriteManifest(next);
    if (!st.ok()) {
      // The old manifest still rules: keep appending to the old
      // segment, drop the orphan.
      ::close(fd);
      ::unlink(SegmentPath(name).c_str());
      return st;
    }
    ::close(log_fd_);
    log_fd_ = fd;
    segments_ = std::move(next);
    ++next_segment_seq_;
    active_bytes_ = 0;
  }
  // The rotation fsync advanced the durability horizon: release any
  // deferred acks it covers.
  if (options_.fsync_batch_max > 0) {
    CompleteSync(covered, Status::Ok());
  } else {
    durable_seq_.store(covered, std::memory_order_release);
  }
  return Status::Ok();
}

Status LogBackedStore::Compact() {
  // Serialize whole compactions against each other; appends and scans
  // keep flowing (the whole point of the incremental sweep).
  MutexLock gate(compact_mu_);
  const auto fault = [this](const char* point) {
    return compact_fault_ ? compact_fault_(point) : Status::Ok();
  };

  // 1. Rotate: every record so far now lives in a retired, fsynced
  // segment, so state serialized at-or-after this instant plus a
  // replay of those segments reconstructs at least this prefix —
  // whichever shard the sweep visits first.
  SLOC_RETURN_IF_ERROR(RotateLog());
  SLOC_RETURN_IF_ERROR(fault("rotated"));

  // 2. Sweep the resident state one shard at a time, holding only that
  // shard's lock (compaction_max_shard_locks() pins the invariant).
  // Mutations racing into already-swept shards are fine: they went to
  // the fresh active segment, which stays live in the manifest and
  // replays over the snapshot.
  const size_t ns = mem_->num_shards();
  std::vector<std::vector<std::pair<int, std::vector<uint8_t>>>> shards(ns);
  size_t count = 0;
  for (size_t shard = 0; shard < ns; ++shard) {
    MutexLock lock(shard_mu_[shard]);
    const size_t held = compact_locks_now_.fetch_add(1) + 1;
    size_t seen = compact_locks_max_.load(std::memory_order_relaxed);
    while (seen < held &&
           !compact_locks_max_.compare_exchange_weak(seen, held)) {
    }
    EnsureShardLoadedLocked(shard);  // failure latched in io_status_
    auto& out = shards[shard];
    mem_->VisitShard(shard, [&](int user_id, const hve::Ciphertext& ct) {
      out.emplace_back(user_id, hve::SerializeCiphertext(*group_, ct));
      ++count;
    });
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    compact_locks_now_.fetch_sub(1);
  }
  SLOC_RETURN_IF_ERROR(fault("serialized"));

  // 3. Write the snapshot. Until step 4 commits, the manifest still
  // lists the retired segments, so a crash here replays them over the
  // NEW snapshot — idempotent, since the snapshot state already
  // includes them (last record per user wins).
  const std::vector<uint8_t> snap =
      options_.snapshot_format == SnapshotFormat::kMmap
          ? BuildMmapSnapshot(shards, count)
          : BuildLegacySnapshot(shards, count);
  SLOC_RETURN_IF_ERROR(WriteFileAtomic(SnapshotPath(dir_), snap));
  SLOC_RETURN_IF_ERROR(fault("snapshot-written"));

  // 4. Commit: shrink the manifest to the active segment, then unlink
  // the retired ones (a crash between the two leaves strays that
  // Open() retires).
  {
    MutexLock lock(log_mu_);
    std::vector<std::string> dead(segments_.begin(), segments_.end() - 1);
    SLOC_RETURN_IF_ERROR(WriteManifest({segments_.back()}));
    segments_ = {segments_.back()};
    log_bytes_ = active_bytes_;
    for (const std::string& name : dead) {
      ::unlink(SegmentPath(name).c_str());
    }
  }
  return Status::Ok();
}

Status LogBackedStore::io_status() const {
  MutexLock lock(log_mu_);
  return io_status_;
}

size_t LogBackedStore::log_bytes() const {
  MutexLock lock(log_mu_);
  return log_bytes_;
}

}  // namespace api
}  // namespace sloc
