#include "api/log_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/check.h"
#include "common/wire.h"
#include "hve/serialize.h"

namespace sloc {
namespace api {

namespace {

constexpr uint8_t kRecordPut = 1;
constexpr uint8_t kRecordErase = 2;
constexpr uint8_t kSnapshotMagic[4] = {'S', 'L', 'S', 'S'};
constexpr uint8_t kSnapshotVersion = 1;

std::string LogPath(const std::string& dir) { return dir + "/wal.log"; }
std::string SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.bin";
}

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// Reads the whole file into `out`. NotFound when it does not exist.
Status ReadFile(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(path + " does not exist");
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  out->resize(size_t(size));
  if (size > 0 && !in.read(reinterpret_cast<char*>(out->data()), size)) {
    return Status::Internal("short read of " + path);
  }
  return Status::Ok();
}

Status WriteAll(int fd, const uint8_t* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    done += size_t(n);
  }
  return Status::Ok();
}

/// Writes `bytes` to <path>.tmp, fsyncs, and renames over `path`, so a
/// crash at any point leaves either the old file or the new one —
/// never a torn mix.
Status WriteFileAtomic(const std::string& path,
                       const std::vector<uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open " + tmp);
  Status st = WriteAll(fd, bytes.data(), bytes.size());
  if (st.ok() && ::fsync(fd) != 0) st = Errno("fsync " + tmp);
  if (::close(fd) != 0 && st.ok()) st = Errno("close " + tmp);
  if (!st.ok()) return st;
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("rename " + tmp);
  }
  return Status::Ok();
}

uint32_t ReadLe32(const std::vector<uint8_t>& b, size_t pos) {
  return uint32_t(b[pos]) | uint32_t(b[pos + 1]) << 8 |
         uint32_t(b[pos + 2]) << 16 | uint32_t(b[pos + 3]) << 24;
}

uint64_t ReadLe64(const std::vector<uint8_t>& b, size_t pos) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | b[pos + size_t(i)];
  return v;
}

/// Upper bound on a plausible record payload. A record holds one
/// serialized ciphertext plus a few header bytes; a length prefix
/// claiming more than this is a corrupted prefix, not a large record.
constexpr size_t kMaxRecordPayload = 64u << 20;

/// True when a validly-checksummed, plausibly-sized record starts
/// anywhere in [from, log.size()). Intact data after a bad stretch
/// means mid-log corruption rather than a torn tail.
bool HasValidRecordAfter(const std::vector<uint8_t>& log, size_t from) {
  const size_t n = log.size();
  for (size_t p = from; p + 12 <= n; ++p) {
    const size_t len = ReadLe32(log, p);
    if (len > kMaxRecordPayload) continue;
    if (n - p - 4 < len || n - p - 4 - len < 8) continue;
    if (wire::Fnv1a(log.data() + p + 4, len) == ReadLe64(log, p + 4 + len)) {
      return true;
    }
  }
  return false;
}

}  // namespace

LogBackedStore::LogBackedStore(std::string dir,
                               std::shared_ptr<const PairingGroup> group,
                               const Options& options)
    : dir_(std::move(dir)),
      group_(std::move(group)),
      options_(options),
      mem_(MakeStore(options.num_shards == 0 ? 1 : options.num_shards)),
      shard_mu_(std::make_unique<std::mutex[]>(mem_->num_shards())) {}

Result<std::unique_ptr<LogBackedStore>> LogBackedStore::Open(
    const std::string& dir, std::shared_ptr<const PairingGroup> group,
    const Options& options) {
  if (group == nullptr) return Status::InvalidArgument("null group");
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Errno("mkdir " + dir);
  }
  std::unique_ptr<LogBackedStore> store(
      new LogBackedStore(dir, std::move(group), options));
  SLOC_RETURN_IF_ERROR(store->Recover());
  store->log_fd_ =
      ::open(LogPath(dir).c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (store->log_fd_ < 0) return Errno("open " + LogPath(dir));
  return store;
}

LogBackedStore::~LogBackedStore() {
  std::lock_guard<std::mutex> lock(log_mu_);
  if (log_fd_ >= 0) {
    ::fsync(log_fd_);
    ::close(log_fd_);
    log_fd_ = -1;
  }
}

Status LogBackedStore::Recover() {
  // 1. Snapshot, if one has been compacted. A corrupt snapshot is not
  // recoverable (the log only holds mutations since it was taken).
  std::vector<uint8_t> snap;
  Status snap_st = ReadFile(SnapshotPath(dir_), &snap);
  if (snap_st.ok()) {
    auto body = wire::VerifyChecksum(snap);
    if (!body.ok()) {
      return Status::DataLoss("snapshot " + SnapshotPath(dir_) +
                              " failed its checksum: " +
                              body.status().message());
    }
    wire::Reader r(snap, 0, *body);
    SLOC_ASSIGN_OR_RETURN(uint8_t m0, r.U8());
    SLOC_ASSIGN_OR_RETURN(uint8_t m1, r.U8());
    SLOC_ASSIGN_OR_RETURN(uint8_t m2, r.U8());
    SLOC_ASSIGN_OR_RETURN(uint8_t m3, r.U8());
    if (m0 != kSnapshotMagic[0] || m1 != kSnapshotMagic[1] ||
        m2 != kSnapshotMagic[2] || m3 != kSnapshotMagic[3]) {
      return Status::DataLoss("bad snapshot magic");
    }
    SLOC_ASSIGN_OR_RETURN(uint8_t version, r.U8());
    if (version != kSnapshotVersion) {
      return Status::Unimplemented("snapshot version " +
                                   std::to_string(int(version)));
    }
    SLOC_ASSIGN_OR_RETURN(uint64_t count, r.U64());
    for (uint64_t i = 0; i < count; ++i) {
      SLOC_ASSIGN_OR_RETURN(int user_id, r.I32());
      SLOC_ASSIGN_OR_RETURN(std::vector<uint8_t> blob, r.Bytes());
      SLOC_ASSIGN_OR_RETURN(hve::Ciphertext ct,
                            hve::ParseCiphertext(*group_, blob));
      mem_->Put(user_id, std::move(ct));
    }
    SLOC_RETURN_IF_ERROR(r.ExpectDone());
  }

  // 2. Replay the log over it. `valid_end` advances past every intact
  // record; a bad record that runs to end-of-file WITH no valid record
  // anywhere after it is a torn append (crash mid-write) and is
  // truncated away. A bad record with intact data after it — trailing
  // records, or a valid record boundary inside the extent a corrupted
  // length prefix claims — is corruption and rejects recovery.
  std::vector<uint8_t> log;
  Status log_st = ReadFile(LogPath(dir_), &log);
  if (!log_st.ok()) {
    log_bytes_ = 0;
    return Status::Ok();  // no log yet: empty store or snapshot only
  }
  const size_t n = log.size();
  size_t pos = 0;
  size_t valid_end = 0;
  while (pos < n) {
    const size_t start = pos;
    // Incomplete length prefix, payload, or checksum at end-of-file:
    // torn tail.
    if (n - start < 4) break;
    const uint32_t len = ReadLe32(log, start);
    if (size_t(len) > kMaxRecordPayload) {
      // No legitimate append ever writes a record this large, and a
      // torn append leaves a correct prefix — this prefix is corrupt.
      return Status::DataLoss("log record at byte " + std::to_string(start) +
                              " declares an implausible " +
                              std::to_string(len) +
                              "-byte payload (corrupted length prefix)");
    }
    if (n - start - 4 < size_t(len) || n - start - 4 - len < 8) {
      // Declared extent runs past end-of-file. Only a torn tail if
      // nothing valid follows; otherwise the prefix swallowed real
      // records.
      if (HasValidRecordAfter(log, start + 1)) {
        return Status::DataLoss(
            "log record at byte " + std::to_string(start) +
            " runs past end-of-file but intact records follow "
            "(corrupted length prefix)");
      }
      break;
    }
    const size_t payload_at = start + 4;
    const uint64_t want = ReadLe64(log, payload_at + len);
    const uint64_t got = wire::Fnv1a(log.data() + payload_at, len);
    const size_t record_end = payload_at + len + 8;
    if (got != want) {
      // Torn tail only when the bad record is the last thing in the
      // file and no valid record boundary hides inside its extent.
      if (record_end >= n && !HasValidRecordAfter(log, start + 1)) break;
      return Status::DataLoss(
          "log record at byte " + std::to_string(start) +
          " failed its checksum with intact log after it "
          "(mid-log corruption)");
    }
    wire::Reader r(log, payload_at, payload_at + len);
    SLOC_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
    SLOC_ASSIGN_OR_RETURN(int user_id, r.I32());
    switch (kind) {
      case kRecordPut: {
        SLOC_ASSIGN_OR_RETURN(std::vector<uint8_t> blob, r.Bytes());
        SLOC_ASSIGN_OR_RETURN(hve::Ciphertext ct,
                              hve::ParseCiphertext(*group_, blob));
        mem_->Put(user_id, std::move(ct));
        break;
      }
      case kRecordErase:
        mem_->Erase(user_id);
        break;
      default:
        return Status::DataLoss("unknown log record kind " +
                                std::to_string(int(kind)));
    }
    SLOC_RETURN_IF_ERROR(r.ExpectDone());
    pos = record_end;
    valid_end = record_end;
  }
  if (valid_end < n) {
    if (::truncate(LogPath(dir_).c_str(), off_t(valid_end)) != 0) {
      return Errno("truncate torn tail of " + LogPath(dir_));
    }
  }
  log_bytes_ = valid_end;
  return Status::Ok();
}

bool LogBackedStore::Append(uint8_t kind, int user_id,
                            const std::vector<uint8_t>& blob) {
  wire::Writer payload;
  payload.U8(kind);
  payload.I32(user_id);
  if (kind == kRecordPut) payload.Bytes(blob);
  const std::vector<uint8_t>& p = payload.buf();
  wire::Writer record;
  record.U32(uint32_t(p.size()));
  record.Raw(p.data(), p.size());
  record.U64(wire::Fnv1a(p.data(), p.size()));

  std::lock_guard<std::mutex> lock(log_mu_);
  if (log_fd_ < 0) {
    if (io_status_.ok()) {
      io_status_ = Status::FailedPrecondition("log file is closed");
    }
    return false;
  }
  Status st = WriteAll(log_fd_, record.buf().data(), record.buf().size());
  if (st.ok() && options_.fsync_every_append && ::fsync(log_fd_) != 0) {
    st = Errno("fsync " + LogPath(dir_));
  }
  if (!st.ok()) {
    if (io_status_.ok()) io_status_ = st;
    return false;
  }
  log_bytes_ += record.buf().size();
  return options_.compact_log_bytes != 0 &&
         log_bytes_ >= options_.compact_log_bytes;
}

void LogBackedStore::Put(int user_id, hve::Ciphertext ct) {
  // Serialize outside any lock (the expensive part). Resident apply and
  // log append happen together under the shard lock, so for any one
  // user the log order always matches the memory order — recovery can
  // never resurrect a ciphertext the acked state had already replaced.
  const std::vector<uint8_t> blob = hve::SerializeCiphertext(*group_, ct);
  bool compact_due;
  {
    std::lock_guard<std::mutex> lock(shard_mu_[mem_->ShardOf(user_id)]);
    mem_->Put(user_id, std::move(ct));
    compact_due = Append(kRecordPut, user_id, blob);
  }
  if (compact_due) AutoCompact();
}

bool LogBackedStore::Erase(int user_id) {
  bool existed;
  bool compact_due = false;
  {
    std::lock_guard<std::mutex> lock(shard_mu_[mem_->ShardOf(user_id)]);
    existed = mem_->Erase(user_id);
    if (existed) compact_due = Append(kRecordErase, user_id, {});
  }
  if (compact_due) AutoCompact();
  return existed;
}

void LogBackedStore::VisitShard(
    size_t shard,
    const std::function<void(int, const hve::Ciphertext&)>& fn) const {
  std::lock_guard<std::mutex> lock(shard_mu_[shard]);
  mem_->VisitShard(shard, fn);
}

void LogBackedStore::AutoCompact() {
  // Concurrent writers crossing the threshold together would all run
  // the full-store sweep; one compactor at a time is enough (the log
  // only shrinks when it succeeds).
  if (compacting_.exchange(true)) return;
  Status st = Compact();
  compacting_.store(false);
  if (!st.ok()) {
    std::lock_guard<std::mutex> lock(log_mu_);
    if (io_status_.ok()) io_status_ = st;
  }
}

Status LogBackedStore::Compact() {
  // Resident state is the source of truth: hold EVERY shard lock plus
  // the log lock for the sweep, so no append can land between the state
  // serialization and the log truncation (such an append would be
  // missing from both snapshot and log after recovery). Lock order is
  // shards-in-index-order then log, matching Put/Erase's single-shard
  // -> log order.
  std::vector<std::unique_lock<std::mutex>> shard_locks;
  shard_locks.reserve(mem_->num_shards());
  for (size_t shard = 0; shard < mem_->num_shards(); ++shard) {
    shard_locks.emplace_back(shard_mu_[shard]);
  }
  std::lock_guard<std::mutex> log_lock(log_mu_);
  if (log_fd_ < 0) return Status::FailedPrecondition("log file is closed");
  wire::Writer w;
  w.Raw(kSnapshotMagic, 4);
  w.U8(kSnapshotVersion);
  size_t count = 0;
  wire::Writer entries;
  for (size_t shard = 0; shard < mem_->num_shards(); ++shard) {
    mem_->VisitShard(shard, [&](int user_id, const hve::Ciphertext& ct) {
      entries.I32(user_id);
      entries.Bytes(hve::SerializeCiphertext(*group_, ct));
      ++count;
    });
  }
  w.U64(count);
  w.Raw(entries.buf().data(), entries.buf().size());
  std::vector<uint8_t> snap = w.Take();
  wire::AppendChecksum(&snap);
  SLOC_RETURN_IF_ERROR(WriteFileAtomic(SnapshotPath(dir_), snap));
  if (::ftruncate(log_fd_, 0) != 0) {
    return Errno("ftruncate " + LogPath(dir_));
  }
  if (::fsync(log_fd_) != 0) return Errno("fsync " + LogPath(dir_));
  log_bytes_ = 0;
  return Status::Ok();
}

Status LogBackedStore::io_status() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return io_status_;
}

size_t LogBackedStore::log_bytes() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return log_bytes_;
}

}  // namespace api
}  // namespace sloc
