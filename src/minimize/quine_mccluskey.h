// Quine-McCluskey two-level boolean minimization.
//
// This is the "binary expression minimization" used by the fixed-length
// baselines ([14]'s Karnaugh-style aggregation and SGO [23]): the alerted
// cells' fixed-length codes are the minterms; the minimized implicants
// become the HVE tokens. The cover is exact — tokens match precisely the
// given minterm set, never a superset (a false positive would alert a
// user outside the zone).

#ifndef SLOC_MINIMIZE_QUINE_MCCLUSKEY_H_
#define SLOC_MINIMIZE_QUINE_MCCLUSKEY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace sloc {

/// Minimizes the boolean function whose ON-set is exactly `minterms`
/// (values < 2^width; width <= 24). Returns patterns over {0,1,*}.
///
/// Prime implicants are generated exactly; cover selection takes all
/// essential primes, then branch-and-bound (exact) when the residual
/// problem is small, falling back to greedy otherwise.
Result<std::vector<std::string>> QuineMcCluskey(
    const std::vector<uint64_t>& minterms, size_t width);

/// Convenience overload on binary index strings of equal width.
Result<std::vector<std::string>> QuineMcCluskey(
    const std::vector<std::string>& minterm_strings);

}  // namespace sloc

#endif  // SLOC_MINIMIZE_QUINE_MCCLUSKEY_H_
