#include "minimize/quine_mccluskey.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "common/bitstring.h"
#include "common/check.h"

namespace sloc {

namespace {

/// Implicant: `bits` are the fixed values on positions where `mask` is 0;
/// mask-1 positions are stars. Invariant: bits & mask == 0.
struct Implicant {
  uint64_t bits;
  uint64_t mask;
  bool operator<(const Implicant& o) const {
    return std::tie(mask, bits) < std::tie(o.mask, o.bits);
  }
  bool operator==(const Implicant& o) const {
    return bits == o.bits && mask == o.mask;
  }
};

std::string ToPattern(const Implicant& imp, size_t width) {
  std::string out(width, '0');
  for (size_t i = 0; i < width; ++i) {
    uint64_t bit = 1ULL << (width - 1 - i);
    if (imp.mask & bit) {
      out[i] = kStar;
    } else if (imp.bits & bit) {
      out[i] = '1';
    }
  }
  return out;
}

/// All minterms covered by an implicant (2^stars values).
void CoveredMinterms(const Implicant& imp, std::vector<uint64_t>* out) {
  out->clear();
  // Enumerate submasks of imp.mask.
  uint64_t sub = 0;
  for (;;) {
    out->push_back(imp.bits | sub);
    if (sub == imp.mask) break;
    sub = (sub - imp.mask) & imp.mask;
  }
}

}  // namespace

Result<std::vector<std::string>> QuineMcCluskey(
    const std::vector<uint64_t>& minterms_in, size_t width) {
  if (width == 0 || width > 24) {
    return Status::InvalidArgument("QM width must be in [1, 24]");
  }
  std::set<uint64_t> unique(minterms_in.begin(), minterms_in.end());
  for (uint64_t m : unique) {
    if (width < 64 && (m >> width) != 0) {
      return Status::InvalidArgument("minterm exceeds width");
    }
  }
  std::vector<std::string> out;
  if (unique.empty()) return out;

  // --- Phase 1: prime implicant generation ---
  std::set<Implicant> current;
  for (uint64_t m : unique) current.insert(Implicant{m, 0});
  std::set<Implicant> primes;
  while (!current.empty()) {
    // Group by (mask, popcount of bits) and try all same-mask combines.
    std::map<std::pair<uint64_t, int>, std::vector<Implicant>> groups;
    for (const Implicant& imp : current) {
      groups[{imp.mask, __builtin_popcountll(imp.bits)}].push_back(imp);
    }
    std::set<Implicant> next;
    std::set<Implicant> combined;
    for (const auto& [key, vec] : groups) {
      auto [mask, ones] = key;
      auto it = groups.find({mask, ones + 1});
      if (it == groups.end()) continue;
      for (const Implicant& a : vec) {
        for (const Implicant& b : it->second) {
          uint64_t diff = a.bits ^ b.bits;
          if (__builtin_popcountll(diff) != 1) continue;
          next.insert(Implicant{a.bits & b.bits, a.mask | diff});
          combined.insert(a);
          combined.insert(b);
        }
      }
    }
    for (const Implicant& imp : current) {
      if (!combined.count(imp)) primes.insert(imp);
    }
    current = std::move(next);
  }

  // --- Phase 2: cover selection ---
  std::vector<Implicant> prime_list(primes.begin(), primes.end());
  std::vector<uint64_t> minterms(unique.begin(), unique.end());
  std::map<uint64_t, int> mt_index;
  for (size_t i = 0; i < minterms.size(); ++i) {
    mt_index[minterms[i]] = static_cast<int>(i);
  }
  // covers[p] = minterm indices covered; covered_by[m] = prime indices.
  std::vector<std::vector<int>> covers(prime_list.size());
  std::vector<std::vector<int>> covered_by(minterms.size());
  std::vector<uint64_t> buf;
  for (size_t p = 0; p < prime_list.size(); ++p) {
    CoveredMinterms(prime_list[p], &buf);
    for (uint64_t m : buf) {
      auto it = mt_index.find(m);
      // Primes cover only ON-set minterms here because implicants are
      // built exclusively from the ON-set.
      SLOC_CHECK(it != mt_index.end());
      covers[p].push_back(it->second);
      covered_by[size_t(it->second)].push_back(static_cast<int>(p));
    }
  }

  std::vector<bool> covered(minterms.size(), false);
  std::vector<int> selection;
  // Essential primes: sole cover of some minterm.
  for (size_t m = 0; m < minterms.size(); ++m) {
    if (covered_by[m].size() == 1) {
      int p = covered_by[m][0];
      if (std::find(selection.begin(), selection.end(), p) ==
          selection.end()) {
        selection.push_back(p);
        for (int mm : covers[size_t(p)]) covered[size_t(mm)] = true;
      }
    }
  }
  // Remaining minterms: greedy largest-new-coverage (exact enough in
  // practice; QM cost model differences are dominated by prime shape).
  for (;;) {
    size_t uncovered = 0;
    for (bool c : covered) uncovered += !c;
    if (uncovered == 0) break;
    int best_p = -1;
    size_t best_gain = 0;
    for (size_t p = 0; p < prime_list.size(); ++p) {
      size_t gain = 0;
      for (int m : covers[p]) gain += !covered[size_t(m)];
      if (gain > best_gain) {
        best_gain = gain;
        best_p = static_cast<int>(p);
      }
    }
    SLOC_CHECK(best_p >= 0) << "cover selection stuck";
    selection.push_back(best_p);
    for (int m : covers[size_t(best_p)]) covered[size_t(m)] = true;
  }

  out.reserve(selection.size());
  for (int p : selection)
    out.push_back(ToPattern(prime_list[size_t(p)], width));
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<std::string>> QuineMcCluskey(
    const std::vector<std::string>& minterm_strings) {
  if (minterm_strings.empty()) return std::vector<std::string>{};
  const size_t width = minterm_strings.front().size();
  std::vector<uint64_t> minterms;
  minterms.reserve(minterm_strings.size());
  for (const std::string& s : minterm_strings) {
    if (s.size() != width) {
      return Status::InvalidArgument("mixed minterm widths");
    }
    SLOC_ASSIGN_OR_RETURN(uint64_t v, BinaryToUint(s));
    minterms.push_back(v);
  }
  return QuineMcCluskey(minterms, width);
}

}  // namespace sloc
