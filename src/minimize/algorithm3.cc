#include "minimize/algorithm3.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/bitstring.h"
#include "common/check.h"

namespace sloc {

namespace {

/// Maps alert cells to sorted, deduplicated leaf positions.
Result<std::vector<int>> AlertLeafPositions(
    const CodingScheme& scheme, const std::vector<int>& alert_cells) {
  std::set<int> positions;
  for (int cell : alert_cells) {
    if (cell < 0 || size_t(cell) >= scheme.cell_index.size()) {
      return Status::InvalidArgument("alert cell " + std::to_string(cell) +
                                     " out of range");
    }
    auto it = scheme.index_to_leaf_pos.find(scheme.cell_index[size_t(cell)]);
    if (it == scheme.index_to_leaf_pos.end()) {
      return Status::Internal("cell index missing from leaf map");
    }
    positions.insert(it->second);
  }
  return std::vector<int>(positions.begin(), positions.end());
}

}  // namespace

Result<std::vector<std::string>> MinimizeAlertCells(
    const CodingScheme& scheme, const std::vector<int>& alert_cells) {
  SLOC_ASSIGN_OR_RETURN(std::vector<int> positions,
                        AlertLeafPositions(scheme, alert_cells));
  std::vector<std::string> tokens;
  if (positions.empty()) return tokens;

  // Split into clusters of consecutive leaf positions (Alg. 3 lines 11-20).
  std::vector<std::vector<std::string>> clusters;
  std::vector<std::string> current;
  for (size_t i = 0; i < positions.size(); ++i) {
    if (i > 0 && positions[i] != positions[i - 1] + 1) {
      clusters.push_back(std::move(current));
      current.clear();
    }
    current.push_back(scheme.leaves[size_t(positions[i])].codeword);
  }
  clusters.push_back(std::move(current));

  // Greedy maximal-subtree search per cluster (lines 23-37).
  for (auto& cluster : clusters) {
    size_t begin = 0;
    while (begin < cluster.size()) {
      size_t remaining = cluster.size() - begin;
      size_t l = remaining;
      bool emitted = false;
      while (l > 1) {
        std::vector<std::string> window(
            cluster.begin() + long(begin), cluster.begin() + long(begin + l));
        std::string code = CommonPrefix(window);
        // Star-padded codewords never share stars in a common prefix of
        // distinct leaves, so `code` is star-free; pad it to RL.
        code = PadRight(code, scheme.rl, kStar);
        auto it = scheme.parent_leaf_count.find(code);
        if (it != scheme.parent_leaf_count.end() &&
            size_t(it->second) == l) {
          tokens.push_back(code);
          begin += l;
          emitted = true;
          break;
        }
        --l;
      }
      if (!emitted) {
        tokens.push_back(cluster[begin]);
        ++begin;
      }
    }
  }
  return tokens;
}

Result<std::vector<std::string>> MinimizeExactCover(
    const CodingScheme& scheme, const std::vector<int>& alert_cells) {
  SLOC_ASSIGN_OR_RETURN(std::vector<int> positions,
                        AlertLeafPositions(scheme, alert_cells));
  std::vector<std::string> tokens;
  if (positions.empty()) return tokens;

  // Work on code strings directly: a node is fully covered iff all its
  // real leaf descendants are alerted. parent_leaf_count gives the
  // denominator; count alerted leaves under each internal prefix.
  std::set<int> alerted(positions.begin(), positions.end());

  // Count alerted leaves per internal code by walking each alerted leaf's
  // prefixes.
  std::map<std::string, int> alerted_under;
  for (int pos : positions) {
    const CodingLeaf& leaf = scheme.leaves[size_t(pos)];
    std::string code = leaf.codeword;
    while (!code.empty() && code.back() == kStar) code.pop_back();
    for (size_t len = 0; len < code.size(); ++len) {
      alerted_under[PadRight(code.substr(0, len), scheme.rl, kStar)]++;
    }
  }

  // A node is "covered" iff alerted_under == parent_leaf_count (full) —
  // emit maximal covered nodes: those with no covered proper ancestor.
  auto is_covered_internal = [&](const std::string& padded) {
    auto it = scheme.parent_leaf_count.find(padded);
    if (it == scheme.parent_leaf_count.end()) return false;
    auto au = alerted_under.find(padded);
    return au != alerted_under.end() && au->second == it->second &&
           it->second > 0;
  };
  auto has_covered_ancestor = [&](const std::string& code_unpadded) {
    for (size_t len = 0; len < code_unpadded.size(); ++len) {
      if (is_covered_internal(
              PadRight(code_unpadded.substr(0, len), scheme.rl, kStar))) {
        return true;
      }
    }
    return false;
  };

  // Emit maximal covered internal nodes.
  for (const auto& [padded, total] : scheme.parent_leaf_count) {
    if (!is_covered_internal(padded)) continue;
    std::string unpadded = padded;
    while (!unpadded.empty() && unpadded.back() == kStar) unpadded.pop_back();
    if (!has_covered_ancestor(unpadded)) tokens.push_back(padded);
  }
  // Emit alerted leaves with no covered ancestor.
  for (int pos : positions) {
    const CodingLeaf& leaf = scheme.leaves[size_t(pos)];
    std::string code = leaf.codeword;
    while (!code.empty() && code.back() == kStar) code.pop_back();
    if (!has_covered_ancestor(code)) tokens.push_back(leaf.codeword);
  }
  std::sort(tokens.begin(), tokens.end());
  return tokens;
}

TokenCost CostOfTokens(const std::vector<std::string>& tokens) {
  TokenCost cost;
  cost.tokens = tokens.size();
  for (const std::string& t : tokens) cost.non_star_bits += NonStarCount(t);
  cost.pairings = 2 * cost.non_star_bits + cost.tokens;
  return cost;
}

}  // namespace sloc
