// Algorithm 3: deterministic token minimization on the coding tree.
//
// Given the set of alerted cells, produces the fewest coding-tree
// codewords (symbolic patterns) whose descendant leaves are exactly the
// alerted cells: common-subtree roots of maximum depth (Section 3.3).
//
// MinimizeExactCover is an independent reference implementation (bottom-up
// subtree marking) used to cross-validate Algorithm 3 in tests; the two
// must agree on every input.

#ifndef SLOC_MINIMIZE_ALGORITHM3_H_
#define SLOC_MINIMIZE_ALGORITHM3_H_

#include <string>
#include <vector>

#include "coding/coding_tree.h"
#include "common/result.h"

namespace sloc {

/// The paper's Algorithm 3 (cluster + greedy subtree search).
/// `alert_cells` may be unordered and contain duplicates; error on
/// unknown cells. Empty input yields no tokens.
Result<std::vector<std::string>> MinimizeAlertCells(
    const CodingScheme& scheme, const std::vector<int>& alert_cells);

/// Reference: provably minimal exact cover of the alert leaves by full
/// subtrees, computed by marking covered nodes bottom-up and emitting
/// the maximal ones.
Result<std::vector<std::string>> MinimizeExactCover(
    const CodingScheme& scheme, const std::vector<int>& alert_cells);

/// Cost model for a token set (applies to symbolic or bit-level tokens):
/// per-ciphertext matching cost of the paper's Section 2.1 query.
struct TokenCost {
  size_t tokens = 0;         ///< number of tokens issued
  size_t non_star_bits = 0;  ///< total non-star positions (paper's "HVE
                             ///< operations" metric)
  size_t pairings = 0;       ///< 2*non_star + tokens (2|J|+1 per token)
};

TokenCost CostOfTokens(const std::vector<std::string>& tokens);

}  // namespace sloc

#endif  // SLOC_MINIMIZE_ALGORITHM3_H_
